"""Versioned, typed result objects for the public API.

Every query through :class:`repro.api.Session` (and hence every harness
task, CLI command and ``repro serve`` response) returns one of these
dataclasses instead of an ad-hoc dictionary:

* :class:`CheckResult` — a model-checking verdict (temporal specification
  results plus, for SBA, the implementation/optimality report);
* :class:`SynthesisResult` — a synthesis summary (state counts, earliest
  decision time for SBA, fixpoint iterations for EBA);
* :class:`TableCell` — one budgeted experiment-grid cell (outcome, timing,
  rendered form).

Each type serialises with :meth:`to_json`, which stamps the schema version
and a type tag, and deserialises with :meth:`from_json`, which refuses
records with a missing or unknown version (:class:`SchemaVersionError`)
instead of guessing.  :func:`result_from_json` dispatches on the type tag.

:meth:`to_dict` renders the *legacy* payload shape — exactly the dictionary
the experiment tasks have always returned — so result journals written
before the redesign and the ones written after it stay interchangeable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Mapping, Optional, Union

#: The current result-schema version.  Bump when a field changes meaning or
#: shape; ``from_json`` refuses anything else.
SCHEMA_VERSION = 1


class SchemaVersionError(ValueError):
    """A serialised result carries a missing or unsupported schema version."""


def _check_version(data: Mapping[str, object], expected_type: str) -> None:
    version = data.get("schema_version")
    if version is None:
        raise SchemaVersionError(
            f"serialised {expected_type} result has no 'schema_version' field"
        )
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"unsupported {expected_type} result schema version {version!r} "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    tag = data.get("type")
    if tag != expected_type:
        raise ValueError(
            f"expected a {expected_type!r} result record, got type {tag!r}"
        )


def _payload(data: Mapping[str, object]) -> Dict[str, object]:
    return {
        key: value
        for key, value in data.items()
        if key not in ("schema_version", "type")
    }


@dataclass(frozen=True)
class CheckResult:
    """The outcome of model checking one scenario.

    ``spec`` maps specification-formula names to their verdicts.  The
    implementation fields (``implementation_ok``/``optimal``/``sound``/
    ``late_points``) are populated by the SBA model check, which also
    compares the protocol's decisions against the knowledge conditions;
    they are ``None`` for the purely temporal and the EBA checks.
    """

    task: str
    engine: str
    exchange: str
    failures: str
    num_agents: int
    max_faulty: int
    states: int
    spec: Dict[str, bool] = field(default_factory=dict)
    rounds: Optional[int] = None
    protocol: Optional[str] = None
    implementation_ok: Optional[bool] = None
    optimal: Optional[bool] = None
    sound: Optional[bool] = None
    late_points: Optional[int] = None

    @property
    def spec_ok(self) -> bool:
        """True when every specification formula holds."""
        return all(self.spec.values())

    def to_dict(self) -> Dict[str, object]:
        """The legacy task payload for this result (journal-compatible)."""
        payload: Dict[str, object] = {
            "task": self.task,
            "engine": self.engine,
            "exchange": self.exchange,
            "n": self.num_agents,
            "t": self.max_faulty,
            "states": self.states,
            "spec": dict(self.spec),
        }
        if self.task == "sba-model-check":
            payload.update(
                failures=self.failures,
                rounds=self.rounds,
                protocol=self.protocol,
                implementation_ok=self.implementation_ok,
                optimal=self.optimal,
                sound=self.sound,
                late_points=self.late_points,
            )
        elif self.task == "eba-model-check":
            payload.update(failures=self.failures, protocol=self.protocol)
        return payload

    def to_json(self) -> Dict[str, object]:
        """The versioned wire form (schema version + type tag + all fields)."""
        data = asdict(self)
        data["schema_version"] = SCHEMA_VERSION
        data["type"] = "check"
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "CheckResult":
        _check_version(data, "check")
        return cls(**_payload(data))


@dataclass(frozen=True)
class SynthesisResult:
    """The outcome of synthesizing one scenario's knowledge-based program.

    ``earliest_condition_time`` is the first time any SBA decision condition
    is satisfiable; ``iterations``/``converged`` report the EBA fixpoint.
    """

    task: str
    engine: str
    exchange: str
    failures: str
    num_agents: int
    max_faulty: int
    states: int
    earliest_condition_time: Optional[int] = None
    iterations: Optional[int] = None
    converged: Optional[bool] = None

    def to_dict(self) -> Dict[str, object]:
        """The legacy task payload for this result (journal-compatible)."""
        payload: Dict[str, object] = {
            "task": self.task,
            "engine": self.engine,
            "exchange": self.exchange,
            "failures": self.failures,
            "n": self.num_agents,
            "t": self.max_faulty,
            "states": self.states,
        }
        if self.task == "sba-synthesis":
            payload["earliest_condition_time"] = self.earliest_condition_time
        else:
            payload["iterations"] = self.iterations
            payload["converged"] = self.converged
        return payload

    def to_json(self) -> Dict[str, object]:
        """The versioned wire form (schema version + type tag + all fields)."""
        data = asdict(self)
        data["schema_version"] = SCHEMA_VERSION
        data["type"] = "synthesis"
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "SynthesisResult":
        _check_version(data, "synthesis")
        return cls(**_payload(data))


@dataclass(frozen=True)
class TableCell:
    """One budgeted experiment-grid cell: rendered form plus raw outcome.

    ``build_seconds``/``check_seconds`` split ``seconds`` into shareable
    artefact construction (model + space) and the actual checking work; both
    are None for cells recorded before the split existed (the schema version
    is unchanged — absent keys read back as None).
    """

    column: str
    cell: str
    seconds: Optional[float] = None
    timed_out: bool = False
    error: Optional[str] = None
    result: Optional[Dict[str, object]] = None
    build_seconds: Optional[float] = None
    check_seconds: Optional[float] = None

    @classmethod
    def from_outcome(cls, column: str, outcome) -> "TableCell":
        """Build a cell from a :class:`~repro.harness.runner.CaseOutcome`."""
        return cls(
            column=column,
            cell=outcome.cell(),
            seconds=outcome.seconds,
            timed_out=outcome.timed_out,
            error=outcome.error,
            result=outcome.result,
            build_seconds=getattr(outcome, "build_seconds", None),
            check_seconds=getattr(outcome, "check_seconds", None),
        )

    def to_json(self) -> Dict[str, object]:
        """The versioned wire form (schema version + type tag + all fields)."""
        data = asdict(self)
        data["schema_version"] = SCHEMA_VERSION
        data["type"] = "table-cell"
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "TableCell":
        _check_version(data, "table-cell")
        return cls(**_payload(data))


#: Dispatch table for :func:`result_from_json`.
_RESULT_TYPES = {
    "check": CheckResult,
    "synthesis": SynthesisResult,
    "table-cell": TableCell,
}


def result_from_json(
    data: Mapping[str, object],
) -> "Union[CheckResult, SynthesisResult, TableCell]":
    """Rebuild any typed result from its :meth:`to_json` form.

    Dispatches on the ``type`` tag; refuses missing/unknown schema versions
    with :class:`SchemaVersionError` and unknown type tags with
    ``ValueError``.
    """
    tag = data.get("type")
    if not isinstance(tag, str) or tag not in _RESULT_TYPES:
        raise ValueError(
            f"unknown result type {tag!r} (known: {sorted(_RESULT_TYPES)})"
        )
    return _RESULT_TYPES[tag].from_json(data)
