"""Construction of models and literature protocols from a :class:`Scenario`.

These are the pure builders behind the facade: :func:`build_model` turns a
scenario into the Byzantine-Agreement model ``(E, F)`` and
:func:`literature_protocol` picks the concrete protocol from the literature
that the paper model-checks for that exchange (the revised/optimal variant
when the scenario's ``optimal_protocol`` flag is set).  The deprecated
``repro.factory`` constructors are thin shims over these functions.
"""

from __future__ import annotations

from repro.api.scenario import Scenario
from repro.exchanges import exchange_by_name
from repro.failures import failure_model_by_name
from repro.protocols.eba import EBasicProtocol, EMinProtocol
from repro.protocols.sba import (
    CountConditionProtocol,
    DworkMosesProtocol,
    FloodSetRevisedProtocol,
    FloodSetStandardProtocol,
)
from repro.systems.model import BAModel


def build_model(scenario: Scenario) -> BAModel:
    """The Byzantine-Agreement model ``(E, F)`` for a scenario."""
    exchange = exchange_by_name(
        scenario.exchange,
        scenario.num_agents,
        scenario.num_values,
        scenario.max_faulty,
    )
    failures = failure_model_by_name(
        scenario.failures, scenario.num_agents, scenario.max_faulty
    )
    return BAModel(exchange, failures)


def literature_protocol(scenario: Scenario):
    """The literature protocol the paper model-checks for a scenario.

    For SBA exchanges the ``optimal_protocol`` flag selects the revised
    (knowledge-optimal) variant where the literature has one; Dwork–Moses
    is its own optimal protocol.  EBA exchanges each have exactly one
    literature protocol.
    """
    n, t = scenario.num_agents, scenario.max_faulty
    exchange = scenario.exchange
    if exchange == "floodset":
        return FloodSetRevisedProtocol(n, t) if scenario.optimal_protocol \
            else FloodSetStandardProtocol(n, t)
    if exchange in ("count", "diff"):
        return CountConditionProtocol(n, t) if scenario.optimal_protocol \
            else FloodSetStandardProtocol(n, t)
    if exchange == "dwork-moses":
        return DworkMosesProtocol(n, t)
    if exchange == "emin":
        return EMinProtocol(n, t)
    if exchange == "ebasic":
        return EBasicProtocol(n, t)
    raise ValueError(f"no literature protocol for exchange {exchange!r}")
