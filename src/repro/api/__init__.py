"""Public facade for the reproduction: scenarios, sessions, typed results.

The three first-class objects:

* :class:`Scenario` — a frozen, validated, hashable model configuration
  (exchange, ``n``, ``t``, value domain, failure model, engine, horizon and
  protocol-variant flag) with a canonical JSON form that keys caches and
  result journals;
* :class:`Session` — lazily builds and memoises per-scenario artefacts
  (model → space → checker → spec formulas → synthesis fixpoints) behind one
  bounded cache, so repeated and batched queries amortise construction;
* the versioned result schema (:class:`CheckResult`,
  :class:`SynthesisResult`, :class:`TableCell`) with ``to_json``/
  ``from_json`` round-trips.

Quick start::

    from repro.api import Scenario, Session

    session = Session()
    scenario = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
    verdict = session.check(scenario)        # typed CheckResult
    synthesis = session.synthesize(scenario) # warm: reuses the cached model
    print(verdict.optimal, synthesis.earliest_condition_time)

``repro serve`` (see :mod:`repro.api.service`) exposes the same facade over
JSON HTTP from one long-running shared session.
"""

from repro.api.artefact_store import STORE_FORMAT_VERSION, ArtefactStore
from repro.api.build import build_model, literature_protocol
from repro.api.cache import (
    DEFAULT_MAX_WEIGHT_BYTES,
    KeyedLocks,
    WeightedLRU,
    estimate_weight,
)
from repro.api.results import (
    SCHEMA_VERSION,
    CheckResult,
    SchemaVersionError,
    SynthesisResult,
    TableCell,
    result_from_json,
)
from repro.api.scenario import (
    EBA_EXCHANGES,
    SBA_EXCHANGES,
    TASK_FIELDS,
    Scenario,
    task_family,
)
from repro.api.session import QUERY_OPS, Session, SessionStats

__all__ = [
    "DEFAULT_MAX_WEIGHT_BYTES",
    "EBA_EXCHANGES",
    "QUERY_OPS",
    "SBA_EXCHANGES",
    "SCHEMA_VERSION",
    "STORE_FORMAT_VERSION",
    "TASK_FIELDS",
    "ArtefactStore",
    "CheckResult",
    "KeyedLocks",
    "Scenario",
    "SchemaVersionError",
    "Session",
    "SessionStats",
    "SynthesisResult",
    "TableCell",
    "WeightedLRU",
    "build_model",
    "estimate_weight",
    "literature_protocol",
    "result_from_json",
    "task_family",
]
