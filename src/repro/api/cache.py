"""Concurrency and eviction primitives behind the :class:`~repro.api.Session`.

Two small, independently-testable pieces:

* :class:`KeyedLocks` — a registry of per-cache-key build locks.  Holding a
  key serialises work on *that key only*: two different scenarios build
  their artefacts concurrently, while two identical requests coalesce onto
  one build (the second holder finds the first holder's value in the cache).
  Entries are reference counted and removed when the last holder releases,
  so the registry never grows beyond the number of in-flight keys.

* :class:`WeightedLRU` — an ordered map bounded by *total weight* as well as
  entry count.  A synthesis fixpoint over a 93k-state space and a 200-byte
  :class:`~repro.api.results.CheckResult` no longer cost the same cache
  slot: every entry carries an estimated byte weight
  (:func:`estimate_weight`), and eviction pops least-recently-used entries
  until both bounds hold.  Keys named in ``pinned`` — the session passes the
  keys currently held in its :class:`KeyedLocks` registry — are never
  evicted, so an artefact a concurrent build (or a coalescing waiter) is
  about to read cannot be dropped out from under it.

Weights are *estimates*, calibrated against pickled sizes of real artefacts
(the floodset n=3 t=1 space pickles at ~122 bytes/state; live CPython
objects with their cached bitmasks run a few times larger).  The model only
has to rank artefact classes sensibly — spaces and synthesis fixpoints scale
with the state count, typed results with their wire size — for eviction
pressure to land on the heavy entries first.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Tuple

#: Default total-weight budget for a session cache (bytes).
DEFAULT_MAX_WEIGHT_BYTES = 256 * 1024 * 1024

#: Estimated live bytes per reachable global state (tuple-of-tuples state,
#: successor slots, amortised share of the cached observation/atom masks).
BYTES_PER_STATE = 512

#: Base weight per artefact class, independent of state count.
_BASE_WEIGHT: Dict[str, int] = {
    "model": 4 * 1024,
    "space": 16 * 1024,
    "checker": 32 * 1024,  # satisfaction memo tables grow with use
    "spec": 8 * 1024,
    "synthesis": 64 * 1024,  # condition tables, rule and space reference
    "result": 1 * 1024,
}


def _num_states_of(value: object) -> int:
    """The state count behind an artefact, probing ``.space`` indirection."""
    probe = getattr(value, "space", value)
    num_states = getattr(probe, "num_states", None)
    if not callable(num_states):
        return 0
    try:
        return int(num_states())
    except Exception:  # pragma: no cover - defensive: weigh by base only
        return 0


def estimate_weight(key: Tuple, value: object) -> int:
    """Estimated resident bytes of one cached artefact.

    ``key[0]`` names the artefact class (the session's cache-key
    convention); state-bearing artefacts add :data:`BYTES_PER_STATE` per
    reachable state, and typed results add twice their JSON wire size (the
    dict-of-fields form is heavier than the serialised text).
    """
    kind = key[0] if isinstance(key, tuple) and key else "result"
    weight = _BASE_WEIGHT.get(kind, 1024)
    states = _num_states_of(value)
    if states:
        weight += BYTES_PER_STATE * states
    if kind == "result":
        to_json = getattr(value, "to_json", None)
        if callable(to_json):
            try:
                weight += 2 * len(json.dumps(to_json()))
            except (TypeError, ValueError):  # pragma: no cover - defensive
                pass
    return weight


class KeyedLocks:
    """A reference-counted registry of per-key mutexes.

    ``holding(key)`` acquires the key's lock for the duration of a ``with``
    block; the entry is created on first use and dropped when the last
    holder (or waiter) releases, so idle keys cost nothing.
    ``active_keys()`` snapshots the keys currently held *or waited on* —
    exactly the set a cache must not evict, because a waiter that coalesces
    onto a finished build is about to read that key's entry.
    """

    def __init__(self) -> None:
        self._registry_lock = threading.Lock()
        # key -> [lock, refcount]
        self._entries: Dict[object, List] = {}  # guarded by: _registry_lock

    @contextmanager
    def holding(self, key: object) -> Iterator[None]:
        with self._registry_lock:
            entry = self._entries.setdefault(key, [threading.Lock(), 0])
            entry[1] += 1
        entry[0].acquire()
        try:
            yield
        finally:
            entry[0].release()
            with self._registry_lock:
                entry[1] -= 1
                if entry[1] <= 0:
                    self._entries.pop(key, None)

    def active_keys(self) -> frozenset:
        """The keys currently held or waited on (never safe to evict)."""
        with self._registry_lock:
            return frozenset(self._entries)

    def __len__(self) -> int:
        with self._registry_lock:
            return len(self._entries)


class WeightedLRU:
    """An insertion-ordered map bounded by entry count *and* total weight.

    Not thread-safe on its own — the session serialises access behind its
    bookkeeping lock.  ``put`` returns the evicted ``(key, value)`` pairs so
    callers can count or log them; eviction scans from the least recently
    used end, skipping ``pinned`` keys and the key just inserted.  If every
    candidate is pinned the cache is left temporarily over budget rather
    than dropping an entry a concurrent build still needs.
    """

    def __init__(self, max_entries: int, max_weight: int) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_weight < 1:
            raise ValueError(f"max_weight must be >= 1, got {max_weight}")
        self.max_entries = max_entries
        self.max_weight = max_weight
        # The guard is external: Session owns the lock, so the declaration
        # below is documentation (LOCK01 only enforces locks the class
        # itself holds; see the class docstring).
        self._entries: "OrderedDict[object, Tuple[object, int]]" = OrderedDict()  # guarded by: Session._lock
        self.total_weight = 0  # guarded by: Session._lock

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def keys(self) -> List[object]:
        """Keys in eviction order (least recently used first)."""
        return list(self._entries)

    def get(self, key: object) -> object:
        """The value for ``key`` (marked most recently used); ``KeyError`` if absent."""
        value, _ = self._entries[key]
        self._entries.move_to_end(key)
        return value

    def weight_of(self, key: object) -> int:
        """The recorded weight of ``key``'s entry; ``KeyError`` if absent."""
        return self._entries[key][1]

    def pop(self, key: object) -> object:
        """Remove and return ``key``'s value; ``KeyError`` if absent."""
        value, weight = self._entries.pop(key)
        self.total_weight -= weight
        return value

    def clear(self) -> None:
        self._entries.clear()
        self.total_weight = 0

    def put(
        self, key: object, value: object, weight: int,
        pinned: Iterable[object] = (),
    ) -> List[Tuple[object, object]]:
        """Insert (or replace) an entry and evict until both bounds hold.

        Returns the evicted ``(key, value)`` pairs, oldest first.
        """
        if weight < 0:
            raise ValueError(f"weight must be >= 0, got {weight}")
        if key in self._entries:
            _, old_weight = self._entries.pop(key)
            self.total_weight -= old_weight
        self._entries[key] = (value, weight)
        self.total_weight += weight
        pinned = frozenset(pinned)
        evicted: List[Tuple[object, object]] = []
        while len(self._entries) > self.max_entries or self.total_weight > self.max_weight:
            victim = next(
                (candidate for candidate in self._entries
                 if candidate != key and candidate not in pinned),
                None,
            )
            if victim is None:
                break  # everything left is pinned: stay over budget for now
            evicted.append((victim, self.pop(victim)))
        return evicted
