"""The :class:`Session`: memoised epistemic queries over shared artefacts.

The paper's workloads are many small queries (spec checks, per-level
conditions, optimality verdicts) over a handful of model configurations.
Building the artefacts behind one query — the model, the levelled state
space, the satisfaction checker, the specification formulas, a synthesis
fixpoint — dominates its cost, and the loose-kwargs API rebuilt all of them
on every call.  A session keys every artefact by the relevant slice of the
:class:`~repro.api.scenario.Scenario` and keeps them in one bounded cache,
so repeated and batched queries amortise construction across grid cells,
engines and query kinds.

Three properties make one session safe and useful to share across many
concurrent clients (``repro serve`` runs exactly one):

* **Striped build locking.**  Artefact construction is serialised *per
  cache key* (:class:`~repro.api.cache.KeyedLocks`), not behind one global
  lock: two different scenarios build concurrently, while two identical
  cold requests coalesce onto a single build — the second holder finds the
  first holder's value and is counted in ``stats().coalesced``.  The
  session's own bookkeeping lock is only ever held for dictionary
  operations, never across a build.

* **Weight-aware eviction.**  The cache
  (:class:`~repro.api.cache.WeightedLRU`) is bounded by estimated resident
  bytes (:func:`~repro.api.cache.estimate_weight`) as well as entry count,
  so one synthesis fixpoint no longer costs the same as a 200-byte
  :class:`~repro.api.results.CheckResult`.  Keys with an in-flight build or
  waiter are pinned and never evicted.

* **A persistent store tier.**  With an
  :class:`~repro.api.artefact_store.ArtefactStore`, result-cache misses
  consult the on-disk store before building and publish what they build, so
  a restarted or second process starts warm; pickled spaces ride along when
  the store opts into pickling.

Queries return the typed results of :mod:`repro.api.results`;
:meth:`Session.stats` reports per-tier counters as an immutable snapshot.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, replace
from types import MappingProxyType
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.artefact_store import ArtefactStore
from repro.api.build import build_model, literature_protocol
from repro.api.cache import (
    DEFAULT_MAX_WEIGHT_BYTES,
    KeyedLocks,
    WeightedLRU,
    estimate_weight,
)
from repro.api.results import CheckResult, SynthesisResult, result_from_json
from repro.api.scenario import Scenario
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

# Everything a query can build must be imported eagerly, *not* inside the
# build closures: a fresh serving process taking concurrent first requests
# would otherwise run these imports from several threads at once, and the
# import machinery's circular-import deadlock avoidance can hand one thread
# a partially initialised module (seen as 500s on the first cold barrage).
from repro.core import synthesis
from repro.engines import checker_for
from repro.kbp.implementation import verify_sba_implementation
from repro.runtime import plan as runtime_plan
from repro.runtime.preload import Preloader
from repro.spec.eba import eba_spec_formulas
from repro.spec.sba import sba_spec_formulas
from repro.systems.space import build_space

#: The query kinds a session (and the JSON service) understands.
QUERY_OPS = ("check", "temporal", "synthesize")

#: A batch request: (op, scenario).
BatchRequest = Tuple[str, Scenario]


@dataclass(frozen=True)
class SessionStats:
    """An immutable snapshot of the session's per-tier cache statistics.

    ``hits``/``misses`` count in-memory lookups per artefact layer (a miss
    is a completed build); ``coalesced`` counts lookups that waited out
    another thread's identical build and then read its result;
    ``preloaded`` counts artefacts served from the session's
    :class:`~repro.runtime.preload.Preloader` instead of being built (like
    store-tier hits, they are neither cache hits nor misses).  ``store``
    is the persistent tier's counter snapshot (read-only mapping), or None
    when the session has no store.  The snapshot is taken under the
    session's bookkeeping lock and every field is frozen or copied, so a
    service response can hand it out without leaking mutable session state.
    """

    hits: int
    misses: int
    entries: int
    max_entries: int
    coalesced: int = 0
    preloaded: int = 0
    weight_bytes: int = 0
    max_weight_bytes: int = 0
    store: Optional[Mapping[str, int]] = None

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_json(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "preloaded": self.preloaded,
            "entries": self.entries,
            "max_entries": self.max_entries,
            "weight_bytes": self.weight_bytes,
            "max_weight_bytes": self.max_weight_bytes,
            "hit_rate": round(self.hit_rate, 4),
        }
        if self.store is not None:
            data["store"] = dict(self.store)
        return data

    @staticmethod
    def aggregate_json(
        snapshots: Iterable[Mapping[str, object]],
    ) -> Dict[str, object]:
        """Merge per-worker ``to_json`` snapshots into one summed view.

        The pre-fork serve front runs one session per worker process;
        ``/stats`` aggregates their labelled snapshots with this helper.
        Integer counters sum (including the nested ``store`` counters —
        each worker's view of its traffic against the one shared store),
        and ``hit_rate`` is recomputed from the summed totals rather than
        averaged, so busy workers weigh what idle ones cannot dilute.
        """
        totals: Dict[str, int] = {}
        store_totals: Dict[str, int] = {}
        saw_store = False
        count = 0
        for snapshot in snapshots:
            count += 1
            for field, value in snapshot.items():
                if field == "store" and isinstance(value, Mapping):
                    saw_store = True
                    for counter, amount in value.items():
                        if isinstance(amount, int):
                            store_totals[counter] = (
                                store_totals.get(counter, 0) + amount
                            )
                elif isinstance(value, int) and not isinstance(value, bool):
                    totals[field] = totals.get(field, 0) + value
        data: Dict[str, object] = dict(totals)
        data["workers"] = count
        lookups = totals.get("hits", 0) + totals.get("misses", 0)
        data["hit_rate"] = (
            round(totals.get("hits", 0) / lookups, 4) if lookups else 0.0
        )
        if saw_store:
            data["store"] = store_totals
        return data


class Session:
    """A bounded memo of per-scenario artefacts behind typed queries.

    ``max_entries`` bounds the number of cached artefacts and
    ``max_weight_bytes`` their estimated total size; the least recently
    used unpinned entry is evicted first.  ``store`` adds the persistent
    tier.  ``preloaded`` seeds the session from a
    :class:`~repro.runtime.preload.Preloader`: model and space lookups that
    miss the cache are served from the preloaded read-only artefacts
    (exact horizon or any prefix of it) instead of building — the mechanism
    behind both ``table --share-spaces`` children and ``serve --preload``
    workers.  ``concurrent_builds=False`` restores the pre-striping
    behaviour (every build under one session-wide lock) — kept as the
    measurable baseline for the concurrency benchmarks, not for production
    use.
    """

    def __init__(
        self,
        max_entries: int = 64,
        max_weight_bytes: int = DEFAULT_MAX_WEIGHT_BYTES,
        store: Optional[ArtefactStore] = None,
        concurrent_builds: bool = True,
        preloaded: Optional["Preloader"] = None,
        metrics: Optional[obs_metrics.MetricsRegistry] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_weight_bytes < 1:
            raise ValueError(
                f"max_weight_bytes must be >= 1, got {max_weight_bytes}"
            )
        self.max_entries = max_entries
        self.max_weight_bytes = max_weight_bytes
        self._lock = threading.RLock()  # bookkeeping only: cache + counters
        self._build_locks = KeyedLocks()
        self._cache = WeightedLRU(max_entries, max_weight_bytes)  # guarded by: _lock
        self._store = store
        self._concurrent_builds = concurrent_builds
        self._preloaded = preloaded
        self._hits = 0  # guarded by: _lock
        self._misses = 0  # guarded by: _lock
        self._coalesced = 0  # guarded by: _lock
        self._preloaded_hits = 0  # guarded by: _lock
        self._build_seconds: Dict[str, float] = {}  # guarded by: _lock
        # Process-level metrics (the global registry unless injected).
        # Labelled by artefact kind (cache-key prefix) and lookup outcome,
        # these are the cross-session view the serve workers expose on
        # /metrics; the SessionStats counters above stay the per-session
        # source of truth for /stats.
        registry = obs_metrics.REGISTRY if metrics is None else metrics
        self.metrics_registry = registry
        self._m_lookups = registry.counter(
            "repro_session_lookups_total",
            "Session artefact-cache lookups by artefact kind and outcome "
            "(hit, miss, store, preloaded)",
        )
        self._m_coalesced = registry.counter(
            "repro_session_coalesced_total",
            "Cache hits that waited out another thread's identical build",
        )
        self._m_build = registry.histogram(
            "repro_session_build_seconds",
            "Artefact build latency by artefact kind",
        )
        self._m_query = registry.histogram(
            "repro_session_query_seconds",
            "End-to-end session query latency by operation",
        )
        # Pre-bound label children for the per-query paths: a warm cache
        # hit must pay a lock-and-add, not label sorting/stringification.
        self._m_lookup_bound: Dict[Tuple[str, str], object] = {}
        self._m_query_bound = {
            op: self._m_query.labels(op=op)
            for op in ("check", "temporal", "synthesize")
        }

    def _count_lookup(self, kind: str, outcome: str) -> None:
        """Count one cache lookup via a cached pre-bound series.

        The bound-children dict is read without the session lock: a racing
        first call for a (kind, outcome) pair just builds the same bound
        series twice and the later assignment wins — both increments land
        on the same underlying series key.
        """
        bound = self._m_lookup_bound.get((kind, outcome))
        if bound is None:
            bound = self._m_lookups.labels(kind=kind, outcome=outcome)
            self._m_lookup_bound[(kind, outcome)] = bound
        bound.inc()

    # ------------------------------------------------------------------ cache

    def _lookup(self, key: Tuple, coalesced: bool = False):
        """One locked cache probe; returns ``(found, value)`` and counts."""
        with self._lock:
            try:
                value = self._cache.get(key)
            except KeyError:
                return False, None
            self._hits += 1
            if coalesced:
                self._coalesced += 1
        self._count_lookup(key[0], "hit")
        if coalesced:
            self._m_coalesced.inc(kind=key[0])
        return True, value

    def _insert(self, key: Tuple, value: object, built: bool) -> None:
        if built:
            self._count_lookup(key[0], "miss")
        with self._lock:
            if built:
                self._misses += 1
            # Keys with an in-flight build or a coalescing waiter are
            # pinned: evicting them would make the waiter rebuild what was
            # just built.
            self._cache.put(
                key, value, estimate_weight(key, value),
                pinned=self._build_locks.active_keys(),
            )

    def _invoke_build(self, key: Tuple, build: Callable[[], object]) -> object:
        """Run one artefact build (no session lock held).

        The test/benchmark seam: subclasses wrap this to count builds per
        key or inject latency without touching the locking discipline.
        """
        return build()

    def _build_and_cache(self, key: Tuple, build: Callable[[], object]) -> object:
        kind = key[0]
        start = time.perf_counter()
        with obs_trace.span(f"build.{kind}"):
            value = self._invoke_build(key, build)
        elapsed = time.perf_counter() - start
        with self._lock:
            self._build_seconds[kind] = (
                self._build_seconds.get(kind, 0.0) + elapsed
            )
        self._m_build.observe(elapsed, kind=kind)
        self._insert(key, value, built=True)
        self._store_put(key, value)
        return value

    def _memo(self, key: Tuple, build: Callable[[], object]) -> object:
        found, value = self._lookup(key)
        if found:
            return value
        if not self._concurrent_builds:
            # Baseline mode: the whole build happens under the session lock
            # (the RLock keeps nested artefact builds re-entrant).
            with self._lock:
                found, value = self._lookup(key)
                if found:
                    return value
                value = self._store_get(key)
                if value is not None:
                    self._count_lookup(key[0], "store")
                    self._insert(key, value, built=False)
                    return value
                return self._build_and_cache(key, build)
        with self._build_locks.holding(key):
            # Someone may have finished this exact build while we waited.
            found, value = self._lookup(key, coalesced=True)
            if found:
                return value
            value = self._store_get(key)
            if value is not None:
                self._count_lookup(key[0], "store")
                self._insert(key, value, built=False)
                return value
            return self._build_and_cache(key, build)

    # ------------------------------------------------------------ store tier

    @staticmethod
    def _artefact_store_key(key: Tuple) -> str:
        return json.dumps(key, sort_keys=False, separators=(",", ":"))

    def _store_get(self, key: Tuple):
        """The persistent tier's answer for a cache key, or None."""
        if self._store is None:
            return None
        if key[0] == "result":
            payload = self._store.get_result(key[1], key[2])
            if payload is None:
                return None
            try:
                return result_from_json(payload)
            except (TypeError, ValueError):  # foreign/stale payload: rebuild
                return None
        if key[0] == "space" and self._store.allow_pickle:
            return self._store.get_artefact("space", self._artefact_store_key(key))
        return None

    def _store_put(self, key: Tuple, value: object) -> None:
        """Publish a freshly built artefact to the persistent tier."""
        if self._store is None:
            return
        if key[0] == "result":
            self._store.put_result(key[1], key[2], value.to_json())
        elif key[0] == "space" and self._store.allow_pickle:
            self._store.put_artefact("space", self._artefact_store_key(key), value)

    @property
    def store(self) -> Optional[ArtefactStore]:
        """The persistent artefact store behind this session, if any."""
        return self._store

    # ------------------------------------------------------------- statistics

    def stats(self) -> SessionStats:
        """An immutable, consistent snapshot of the per-tier statistics.

        Taken under the bookkeeping lock — which striped building only ever
        holds for dictionary operations, so liveness probes (``repro
        serve``'s ``/health``) stay responsive during long builds.  The
        store counters come back as a read-only mapping over a fresh copy;
        mutating the snapshot (or its JSON form) cannot touch the session.
        """
        with self._lock:
            store = self._store.stats() if self._store is not None else None
            return SessionStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._cache),
                max_entries=self.max_entries,
                coalesced=self._coalesced,
                preloaded=self._preloaded_hits,
                weight_bytes=self._cache.total_weight,
                max_weight_bytes=self.max_weight_bytes,
                store=MappingProxyType(store) if store is not None else None,
            )

    def build_seconds(self, kinds: Sequence[str] = ("model", "space")) -> float:
        """Cumulative seconds this session spent building the given artefact
        kinds (cache-key prefixes: ``model``, ``space``, ``checker``,
        ``spec``, ``synthesis``, ``result``).

        The default — the shareable space artefacts — is what the grid
        harness subtracts from a cell's total to split ``build_seconds``
        from ``check_seconds``.  Preload- and store-served artefacts cost no
        build time, which is exactly what makes shared-space speedups
        visible in journals.  Nested builds overlap (a space build's model
        lookup may itself build), so sums across kinds can slightly
        overcount; for model-within-space that overlap is sub-millisecond.
        """
        with self._lock:
            return sum(self._build_seconds.get(kind, 0.0) for kind in kinds)

    def clear(self) -> None:
        """Drop every cached artefact (statistics and the store are kept)."""
        with self._lock:
            self._cache.clear()

    # ------------------------------------------------------------- artefacts

    def _model_key(self, scenario: Scenario) -> Tuple:
        return runtime_plan.model_key(scenario)

    def _from_preload(self, key: Tuple, fetch: Callable[[], object]):
        """Probe the preloader for an artefact and seed the cache with it.

        The preloaded path mirrors the store tier: a served artefact is
        inserted with ``built=False`` (no miss is counted — nothing was
        built) and counted in ``stats().preloaded``.  ``fetch`` may raise
        :class:`~repro.systems.space.SpaceBudgetExceeded`, which is exactly
        what the equivalent fresh build would have raised.
        """
        if self._preloaded is None:
            return None
        value = fetch()
        if value is None:
            return None
        with self._lock:
            self._preloaded_hits += 1
        self._count_lookup(key[0], "preloaded")
        self._insert(key, value, built=False)
        return value

    def model(self, scenario: Scenario):
        """The (memoised) Byzantine-Agreement model for a scenario."""
        key = runtime_plan.model_cache_key(scenario)
        found, value = self._lookup(key)
        if found:
            return value
        value = self._from_preload(
            key, lambda: self._preloaded.model_for(scenario)
        )
        if value is not None:
            return value
        return self._memo(key, lambda: build_model(scenario))

    def _horizon(self, scenario: Scenario) -> int:
        if scenario.rounds is not None:
            return scenario.rounds
        return self.model(scenario).default_horizon()

    def _space(self, scenario: Scenario):
        """(space, protocol, horizon) under the literature protocol.

        The cache key (built by :func:`repro.runtime.plan.space_cache_key`)
        excludes the engine — all satisfaction backends share one space per
        (model, protocol, horizon, state budget).  A session with a
        :class:`~repro.runtime.preload.Preloader` serves cache misses from
        the preloaded artefacts when they cover the scenario's space at this
        horizon (exactly, or as a prefix of a taller build).
        """
        protocol = literature_protocol(scenario)
        horizon = self._horizon(scenario)
        key = runtime_plan.space_cache_key(scenario, protocol.name, horizon)
        found, value = self._lookup(key)
        if not found:
            value = self._from_preload(
                key, lambda: self._preloaded.space_for(scenario, horizon)
            )
            found = value is not None
        if found:
            return value, protocol, horizon
        return self._memo(
            key,
            lambda: build_space(
                self.model(scenario), protocol,
                horizon=horizon, max_states=scenario.max_states,
            ),
        ), protocol, horizon

    def space(self, scenario: Scenario):
        """The (memoised) levelled space under the literature protocol."""
        return self._space(scenario)[0]

    def checker(self, scenario: Scenario):
        """A (memoised) satisfaction checker over the scenario's space."""
        space, protocol, horizon = self._space(scenario)
        key = ("checker",) + self._model_key(scenario) + (
            protocol.name, horizon, scenario.max_states, scenario.engine,
        )
        return self._memo(key, lambda: checker_for(space, scenario.engine))

    def spec_formulas(self, scenario: Scenario) -> Dict[str, object]:
        """The (memoised) specification formulas for the scenario's family."""
        horizon = self._horizon(scenario)
        key = ("spec", scenario.family) + self._model_key(scenario) + (horizon,)

        def build():
            model = self.model(scenario)
            if scenario.family == "sba":
                return sba_spec_formulas(model, horizon)
            return eba_spec_formulas(model, horizon)

        return self._memo(key, build)

    def synthesis_artifact(self, scenario: Scenario):
        """The full (memoised) synthesis result for a scenario.

        Returns the rich :class:`~repro.core.synthesis.SBASynthesisResult`
        or :class:`~repro.core.synthesis.EBASynthesisResult` — condition
        tables, rule and space included.  The ``optimal_protocol`` flag is
        irrelevant to synthesis and is normalised out of the cache key.
        """
        scenario = replace(scenario, optimal_protocol=False)
        key = ("synthesis", scenario.canonical_json())

        def build():
            model = self.model(scenario)
            # Late attribute lookup keeps the module's test seam intact
            # (synthesis.synthesize_* can still be monkeypatched).
            synthesize = (
                synthesis.synthesize_sba if scenario.family == "sba"
                else synthesis.synthesize_eba
            )
            return synthesize(
                model,
                horizon=scenario.rounds,
                max_states=scenario.max_states,
                engine=scenario.engine,
            )

        return self._memo(key, build)

    # --------------------------------------------------------------- queries

    def check(self, scenario: Scenario) -> CheckResult:
        """Model check the scenario's literature protocol.

        For SBA scenarios this is the paper's full experiment: the temporal
        specification formulas plus the knowledge-optimality comparison of
        the protocol's decisions against ``B^N_i CB_N ∃v``.  For EBA
        scenarios it checks the EBA specification.
        """
        start = time.perf_counter()
        try:
            task = scenario.check_task()
            key = ("result", "check", scenario.canonical_json())
            return self._memo(key, lambda: self._run_check(task, scenario))
        finally:
            self._m_query_bound["check"].observe(time.perf_counter() - start)

    def check_temporal(self, scenario: Scenario) -> CheckResult:
        """Model check only the purely temporal SBA specification.

        This is the paper's concluding-remark ablation: no knowledge or
        common-belief operators, so it scales considerably further.  Only
        SBA scenarios have a temporal-only task.  Unlike the harness task
        (which always runs the model's default horizon), a scenario's
        ``rounds`` override is honoured here, as it is in :meth:`check`.
        """
        if scenario.family != "sba":
            raise ValueError(
                "temporal-only checking is defined for SBA exchanges only "
                f"(got {scenario.exchange!r})"
            )
        start = time.perf_counter()
        try:
            scenario = replace(scenario, optimal_protocol=False)
            key = ("result", "temporal", scenario.canonical_json())
            return self._memo(
                key, lambda: self._run_check("sba-temporal-only", scenario)
            )
        finally:
            self._m_query_bound["temporal"].observe(time.perf_counter() - start)

    def synthesize(self, scenario: Scenario) -> SynthesisResult:
        """Synthesize the scenario's knowledge-based program implementation."""
        start = time.perf_counter()
        try:
            scenario = replace(scenario, optimal_protocol=False)
            key = ("result", "synthesize", scenario.canonical_json())
            return self._memo(key, lambda: self._summarise_synthesis(scenario))
        finally:
            self._m_query_bound["synthesize"].observe(time.perf_counter() - start)

    def query(self, op: str, scenario: Scenario):
        """Dispatch one query by operation name (see :data:`QUERY_OPS`)."""
        if op == "check":
            return self.check(scenario)
        if op == "temporal":
            return self.check_temporal(scenario)
        if op == "synthesize":
            return self.synthesize(scenario)
        raise ValueError(f"unknown query op {op!r} (expected one of {QUERY_OPS})")

    def batch(
        self, requests: Iterable[Union[BatchRequest, Sequence]]
    ) -> List[Union[CheckResult, SynthesisResult]]:
        """Run a sequence of ``(op, scenario)`` queries on the shared cache.

        The whole point of batching: every query in the batch sees the
        artefacts its predecessors built, so a grid of related scenarios
        amortises space construction the way :func:`run_table`'s forked
        children cannot.

        A query that raises propagates immediately (later requests do not
        run), but never poisons the session: completed queries stay cached,
        the failing key's build lock is released and nothing partial is
        inserted, so retrying the same batch resumes where it failed.
        """
        results = []
        for op, scenario in requests:
            results.append(self.query(op, scenario))
        return results

    # -------------------------------------------------------------- internals

    def _run_check(self, task: str, scenario: Scenario) -> CheckResult:
        model = self.model(scenario)
        space, protocol, horizon = self._space(scenario)
        checker = self.checker(scenario)
        spec_results = {
            name: checker.holds_initially(formula)
            for name, formula in self.spec_formulas(scenario).items()
        }
        result = CheckResult(
            task=task,
            engine=scenario.engine,
            exchange=scenario.exchange,
            failures=scenario.failures,
            num_agents=scenario.num_agents,
            max_faulty=scenario.max_faulty,
            states=space.num_states(),
            spec=spec_results,
            rounds=horizon,
            protocol=protocol.name,
        )
        if task != "sba-model-check":
            return result
        # The verifier shares the checker's engine state (one symbolic
        # encoder per scenario, not one for the spec and one for the guards).
        report = verify_sba_implementation(
            model, protocol, space=space, engine=scenario.engine, checker=checker
        )
        return replace(
            result,
            implementation_ok=report.ok,
            optimal=report.is_optimal,
            sound=report.is_sound,
            late_points=len(report.late_mismatches()),
        )

    def _summarise_synthesis(self, scenario: Scenario) -> SynthesisResult:
        artifact = self.synthesis_artifact(scenario)
        model = self.model(scenario)
        base = dict(
            task=scenario.synthesis_task(),
            engine=scenario.engine,
            exchange=scenario.exchange,
            failures=scenario.failures,
            num_agents=scenario.num_agents,
            max_faulty=scenario.max_faulty,
            states=artifact.space.num_states(),
        )
        if scenario.family == "sba":
            earliest = None
            for time in range(artifact.space.horizon + 1):
                if any(
                    not artifact.conditions.get(agent, time, value).always_false()
                    for agent in model.agents()
                    for value in model.values()
                ):
                    earliest = time
                    break
            return SynthesisResult(**base, earliest_condition_time=earliest)
        return SynthesisResult(
            **base, iterations=artifact.iterations, converged=artifact.converged
        )
