"""The :class:`Session`: memoised epistemic queries over shared artefacts.

The paper's workloads are many small queries (spec checks, per-level
conditions, optimality verdicts) over a handful of model configurations.
Building the artefacts behind one query — the model, the levelled state
space, the satisfaction checker, the specification formulas, a synthesis
fixpoint — dominates its cost, and the loose-kwargs API rebuilt all of them
on every call.  A session keys every artefact by the relevant slice of the
:class:`~repro.api.scenario.Scenario` and keeps them in one bounded LRU
cache, so repeated and batched queries amortise construction across grid
cells, engines and query kinds:

* two checks of the same configuration share the model, space, checker and
  formulas (the second is a pure result-cache hit);
* a temporal-only check after a full check reuses the space and checker;
* a repeated synthesis returns the memoised fixpoint.

Queries return the typed results of :mod:`repro.api.results`.  A session is
thread-safe (one re-entrant lock around the cache and the queries), which is
what lets ``repro serve`` answer concurrent requests from a single shared
session.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Sequence, Tuple, Union

from repro.api.build import build_model, literature_protocol
from repro.api.results import CheckResult, SynthesisResult
from repro.api.scenario import Scenario
from repro.engines import checker_for
from repro.systems.space import build_space

#: The query kinds a session (and the JSON service) understands.
QUERY_OPS = ("check", "temporal", "synthesize")

#: A batch request: (op, scenario).
BatchRequest = Tuple[str, Scenario]


@dataclass(frozen=True)
class SessionStats:
    """Cumulative cache statistics for a session."""

    hits: int
    misses: int
    entries: int
    max_entries: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_json(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "max_entries": self.max_entries,
            "hit_rate": round(self.hit_rate, 4),
        }


class Session:
    """A bounded memo of per-scenario artefacts behind typed queries.

    ``max_entries`` bounds the number of cached artefacts (models, spaces,
    checkers, formula sets, synthesis fixpoints and typed results all count
    as one entry each); the least recently used entry is evicted first.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._cache: "OrderedDict[Tuple, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ cache

    def _memo(self, key: Tuple, build: Callable[[], object]) -> object:
        with self._lock:
            if key in self._cache:
                self._hits += 1
                self._cache.move_to_end(key)
                return self._cache[key]
            self._misses += 1
            value = build()
            self._cache[key] = value
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
            return value

    def stats(self) -> SessionStats:
        """Cumulative cache statistics (hits include every artefact layer).

        Deliberately lock-free: the counters are plain ints and ``len`` is
        atomic under CPython, so liveness probes (``repro serve``'s
        ``/health``) stay responsive even while a long artefact build holds
        the session lock.
        """
        return SessionStats(
            hits=self._hits,
            misses=self._misses,
            entries=len(self._cache),
            max_entries=self.max_entries,
        )

    def clear(self) -> None:
        """Drop every cached artefact (statistics are kept)."""
        with self._lock:
            self._cache.clear()

    # ------------------------------------------------------------- artefacts

    def _model_key(self, scenario: Scenario) -> Tuple:
        return (
            scenario.exchange,
            scenario.num_agents,
            scenario.max_faulty,
            scenario.num_values,
            scenario.failures,
        )

    def model(self, scenario: Scenario):
        """The (memoised) Byzantine-Agreement model for a scenario."""
        key = ("model",) + self._model_key(scenario)
        return self._memo(key, lambda: build_model(scenario))

    def _horizon(self, scenario: Scenario) -> int:
        if scenario.rounds is not None:
            return scenario.rounds
        return self.model(scenario).default_horizon()

    def _space(self, scenario: Scenario):
        """(space, protocol, horizon) under the literature protocol.

        The cache key excludes the engine — all satisfaction backends share
        one space per (model, protocol, horizon, state budget).
        """
        protocol = literature_protocol(scenario)
        horizon = self._horizon(scenario)
        key = ("space",) + self._model_key(scenario) + (
            protocol.name, horizon, scenario.max_states,
        )
        return self._memo(
            key,
            lambda: build_space(
                self.model(scenario), protocol,
                horizon=horizon, max_states=scenario.max_states,
            ),
        ), protocol, horizon

    def space(self, scenario: Scenario):
        """The (memoised) levelled space under the literature protocol."""
        return self._space(scenario)[0]

    def checker(self, scenario: Scenario):
        """A (memoised) satisfaction checker over the scenario's space."""
        space, protocol, horizon = self._space(scenario)
        key = ("checker",) + self._model_key(scenario) + (
            protocol.name, horizon, scenario.max_states, scenario.engine,
        )
        return self._memo(key, lambda: checker_for(space, scenario.engine))

    def spec_formulas(self, scenario: Scenario) -> Dict[str, object]:
        """The (memoised) specification formulas for the scenario's family."""
        horizon = self._horizon(scenario)
        key = ("spec", scenario.family) + self._model_key(scenario) + (horizon,)

        def build():
            model = self.model(scenario)
            if scenario.family == "sba":
                from repro.spec.sba import sba_spec_formulas

                return sba_spec_formulas(model, horizon)
            from repro.spec.eba import eba_spec_formulas

            return eba_spec_formulas(model, horizon)

        return self._memo(key, build)

    def synthesis_artifact(self, scenario: Scenario):
        """The full (memoised) synthesis result for a scenario.

        Returns the rich :class:`~repro.core.synthesis.SBASynthesisResult`
        or :class:`~repro.core.synthesis.EBASynthesisResult` — condition
        tables, rule and space included.  The ``optimal_protocol`` flag is
        irrelevant to synthesis and is normalised out of the cache key.
        """
        scenario = replace(scenario, optimal_protocol=False)
        key = ("synthesis", scenario.canonical_json())

        def build():
            model = self.model(scenario)
            if scenario.family == "sba":
                from repro.core.synthesis import synthesize_sba

                return synthesize_sba(
                    model,
                    horizon=scenario.rounds,
                    max_states=scenario.max_states,
                    engine=scenario.engine,
                )
            from repro.core.synthesis import synthesize_eba

            return synthesize_eba(
                model,
                horizon=scenario.rounds,
                max_states=scenario.max_states,
                engine=scenario.engine,
            )

        return self._memo(key, build)

    # --------------------------------------------------------------- queries

    def check(self, scenario: Scenario) -> CheckResult:
        """Model check the scenario's literature protocol.

        For SBA scenarios this is the paper's full experiment: the temporal
        specification formulas plus the knowledge-optimality comparison of
        the protocol's decisions against ``B^N_i CB_N ∃v``.  For EBA
        scenarios it checks the EBA specification.
        """
        task = scenario.check_task()
        key = ("result", "check", scenario.canonical_json())
        return self._memo(key, lambda: self._run_check(task, scenario))

    def check_temporal(self, scenario: Scenario) -> CheckResult:
        """Model check only the purely temporal SBA specification.

        This is the paper's concluding-remark ablation: no knowledge or
        common-belief operators, so it scales considerably further.  Only
        SBA scenarios have a temporal-only task.  Unlike the harness task
        (which always runs the model's default horizon), a scenario's
        ``rounds`` override is honoured here, as it is in :meth:`check`.
        """
        if scenario.family != "sba":
            raise ValueError(
                "temporal-only checking is defined for SBA exchanges only "
                f"(got {scenario.exchange!r})"
            )
        scenario = replace(scenario, optimal_protocol=False)
        key = ("result", "temporal", scenario.canonical_json())
        return self._memo(
            key, lambda: self._run_check("sba-temporal-only", scenario)
        )

    def synthesize(self, scenario: Scenario) -> SynthesisResult:
        """Synthesize the scenario's knowledge-based program implementation."""
        scenario = replace(scenario, optimal_protocol=False)
        key = ("result", "synthesize", scenario.canonical_json())
        return self._memo(key, lambda: self._summarise_synthesis(scenario))

    def query(self, op: str, scenario: Scenario):
        """Dispatch one query by operation name (see :data:`QUERY_OPS`)."""
        if op == "check":
            return self.check(scenario)
        if op == "temporal":
            return self.check_temporal(scenario)
        if op == "synthesize":
            return self.synthesize(scenario)
        raise ValueError(f"unknown query op {op!r} (expected one of {QUERY_OPS})")

    def batch(
        self, requests: Iterable[Union[BatchRequest, Sequence]]
    ) -> List[Union[CheckResult, SynthesisResult]]:
        """Run a sequence of ``(op, scenario)`` queries on the shared cache.

        The whole point of batching: every query in the batch sees the
        artefacts its predecessors built, so a grid of related scenarios
        amortises space construction the way :func:`run_table`'s forked
        children cannot.
        """
        results = []
        for op, scenario in requests:
            results.append(self.query(op, scenario))
        return results

    # -------------------------------------------------------------- internals

    def _run_check(self, task: str, scenario: Scenario) -> CheckResult:
        model = self.model(scenario)
        space, protocol, horizon = self._space(scenario)
        checker = self.checker(scenario)
        spec_results = {
            name: checker.holds_initially(formula)
            for name, formula in self.spec_formulas(scenario).items()
        }
        result = CheckResult(
            task=task,
            engine=scenario.engine,
            exchange=scenario.exchange,
            failures=scenario.failures,
            num_agents=scenario.num_agents,
            max_faulty=scenario.max_faulty,
            states=space.num_states(),
            spec=spec_results,
            rounds=horizon,
            protocol=protocol.name,
        )
        if task != "sba-model-check":
            return result
        # The verifier shares the checker's engine state (one symbolic
        # encoder per scenario, not one for the spec and one for the guards).
        from repro.kbp.implementation import verify_sba_implementation

        report = verify_sba_implementation(
            model, protocol, space=space, engine=scenario.engine, checker=checker
        )
        return replace(
            result,
            implementation_ok=report.ok,
            optimal=report.is_optimal,
            sound=report.is_sound,
            late_points=len(report.late_mismatches()),
        )

    def _summarise_synthesis(self, scenario: Scenario) -> SynthesisResult:
        artifact = self.synthesis_artifact(scenario)
        model = self.model(scenario)
        base = dict(
            task=scenario.synthesis_task(),
            engine=scenario.engine,
            exchange=scenario.exchange,
            failures=scenario.failures,
            num_agents=scenario.num_agents,
            max_faulty=scenario.max_faulty,
            states=artifact.space.num_states(),
        )
        if scenario.family == "sba":
            earliest = None
            for time in range(artifact.space.horizon + 1):
                if any(
                    not artifact.conditions.get(agent, time, value).always_false()
                    for agent in model.agents()
                    for value in model.values()
                ):
                    earliest = time
                    break
            return SynthesisResult(**base, earliest_condition_time=earliest)
        return SynthesisResult(
            **base, iterations=artifact.iterations, converged=artifact.converged
        )
