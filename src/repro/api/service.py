"""``repro serve``: a long-running JSON-over-HTTP query service.

The service exposes the :class:`~repro.api.session.Session` facade over
plain stdlib HTTP (no third-party dependencies), which is the first piece of
the serving story: one resident process keeps the per-scenario artefacts
warm, so the many small epistemic queries the paper's workloads consist of
are answered from the session cache instead of rebuilding state spaces per
request.

Endpoints (all JSON):

* ``POST /check`` — body ``{"scenario": {...}, "temporal": false}``; model
  checks the scenario (``temporal: true`` runs the temporal-only ablation).
* ``POST /synthesize`` — body ``{"scenario": {...}}``; synthesizes the
  knowledge-based program implementation.
* ``POST /batch`` — body ``{"requests": [{"op": "check"|"temporal"|
  "synthesize", "scenario": {...}}, ...]}``; runs the whole batch on the
  shared session and returns the results in order.
* ``GET /health`` — liveness probe (also reports the cache statistics).
* ``GET /stats`` — the session's cumulative cache statistics; under
  ``--workers N`` also every worker's labelled counters plus their
  aggregate.
* ``GET /metrics`` — Prometheus text exposition of the process metrics
  (per-endpoint request counters and latency histograms, session cache
  tiers, store events); under ``--workers N`` any worker answers for the
  whole front with per-worker labelled series.

Every successful response carries ``{"ok": true, "result": <typed result
JSON>, "cache": <stats>}``; the result payloads are the versioned schema of
:mod:`repro.api.results` (``schema_version`` included), and errors come
back as ``{"ok": false, "error": ...}`` with a 4xx status.  Scenario
documents are validated by :meth:`Scenario.from_json`, so a typo'd field is
a 400, never a silently-defaulted query.

**Connection discipline.**  The handler speaks HTTP/1.1 keep-alive, which
makes request framing load-bearing: an error response may only reuse the
connection when the request body was consumed in full, so any response sent
with unread body bytes still on the socket carries ``Connection: close``
(the alternative — draining an arbitrarily large or lying ``Content-Length``
— is an invitation to hang).  A client that disconnects mid-response is
terminal for that connection: the broken pipe is swallowed, nothing further
is written, and no traceback is logged.

**Scaling out.**  The server is a ``ThreadingHTTPServer`` over one shared
session with per-cache-key build locks: concurrent *different* requests
build their artefacts in parallel, while concurrent *identical* requests
coalesce onto a single build (the ``coalesced`` counter in ``/stats``).
Pure-Python builds are still GIL-bound inside one process, so ``repro serve
--workers N`` forks N worker processes that all ``accept()`` on one
listening socket bound by the parent (kernel-level load balancing); the
parent supervises — dead workers are restarted with backoff, SIGINT/SIGTERM
fan out to every worker, and shutdown drains in-flight requests.  With
``--store DIR`` the workers share one persistent
:class:`~repro.api.artefact_store.ArtefactStore`, so one worker's cold
build warms its siblings (and any later process) through the store tier.

**Warm starts.**  ``--preload SPEC`` (e.g. ``table1:max-n=4``) builds the
space artefacts of a scenario frontier before serving: under ``--workers N``
the parent builds once pre-fork and every worker inherits the artefacts
copy-on-write; single-worker mode preloads on a background thread.  Until
the build completes ``/health`` answers ``ready: false`` (queries are still
served, just cold).
"""

from __future__ import annotations

import json
import logging
import os
import signal
import socket
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.api.artefact_store import ArtefactStore
from repro.api.results import SCHEMA_VERSION
from repro.api.scenario import Scenario
from repro.api.session import QUERY_OPS, Session, SessionStats
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.preload import Preloader, parse_frontier
from repro.version import __version__

#: Service diagnostics logger (configured by :func:`repro.obs.log.setup`;
#: informational records go to stdout, warnings and errors to stderr,
#: byte-compatible with the ``print`` diagnostics this replaced).
_LOG = logging.getLogger("repro.serve")

#: Default bind address and port for ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

#: Largest accepted request body, a guard against accidental floods.
MAX_BODY_BYTES = 1 << 20

#: Seconds a shutting-down worker waits for in-flight requests to finish.
DRAIN_SECONDS = 10.0

#: Seconds the supervising parent gives workers to exit after fan-out
#: before escalating to SIGKILL.
SHUTDOWN_GRACE_SECONDS = 10.0

#: Benchmark seam: when this environment variable holds a positive float,
#: every cold *result* build additionally sleeps that many seconds while
#: holding a process-wide lock.  That models CPU-bound pure-Python compute
#: faithfully with respect to the GIL — serialised against every other
#: build in the same process, concurrent across forked workers — which is
#: what ``benchmarks/test_perf_api.py`` needs to measure the pre-fork
#: front on single-core machines where real compute cannot parallelise
#: anywhere.  Unset (the default) it changes nothing.
BUILD_DELAY_ENV = "REPRO_SERVE_BUILD_DELAY"

#: Test seam: when this environment variable holds a positive float, the
#: ``--preload`` build additionally sleeps that many seconds, so tests and CI
#: can observe the not-yet-ready window (``/health`` with ``ready: false``)
#: deterministically.  Unset (the default) it changes nothing.
PRELOAD_DELAY_ENV = "REPRO_SERVE_PRELOAD_DELAY"

#: Supervisor restart backoff base, overridable for tests via
#: ``REPRO_SERVE_RESTART_BACKOFF`` (seconds; doubles per consecutive
#: restart of the same worker slot, capped at 30s).
RESTART_BACKOFF_ENV = "REPRO_SERVE_RESTART_BACKOFF"
DEFAULT_RESTART_BACKOFF = 1.0

#: Accept backpressure for pre-fork workers: a worker stops pulling new
#: connections while this many are already open, so the next connection
#: stays in the shared listen backlog for an idle sibling to ``accept()``.
#: Without it the kernel's LIFO ``accept()`` wake-up lets one worker hoard
#: connections — its accept loop stays fast even while its handler threads
#: queue behind the GIL.  Two keeps a build and a quick request (a hit, a
#: ``/stats`` probe) concurrent without letting a backlog form.
WORKER_MAX_INFLIGHT = 2

_STATS_DIR_NAME = "stats"

#: Endpoints the per-endpoint HTTP metrics label by path; anything else is
#: folded into "other" so scanners cannot inflate the label cardinality.
_KNOWN_ENDPOINTS = frozenset(
    {"/check", "/synthesize", "/batch", "/health", "/healthz", "/stats",
     "/metrics"}
)


def _endpoint_label(path: str) -> str:
    return path if path in _KNOWN_ENDPOINTS else "other"


class ServiceError(ValueError):
    """A client error with the HTTP status it should map to."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _parse_scenario(document: object) -> Scenario:
    if not isinstance(document, dict):
        raise ServiceError("request body must be a JSON object")
    scenario_doc = document.get("scenario")
    if not isinstance(scenario_doc, dict):
        raise ServiceError("request must carry a 'scenario' JSON object")
    try:
        return Scenario.from_json(scenario_doc)
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"invalid scenario: {exc}") from exc


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Request handler bound to the server's shared session."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "verbose", False):
            return
        if obs_log.active_format() == "json":
            # Keep the JSON diagnostic stream pure: the stock access line
            # writes raw text straight to stderr, so reroute it through
            # the logger (which carries the active trace ID too).
            _LOG.info("%s - - %s", self.address_string(), format % args)
        else:
            super().log_message(format, *args)

    @property
    def session(self) -> Session:
        return self.server.session

    def _begin_request(self) -> None:
        self._body_consumed = False
        self._connection_dead = False
        self._status: Optional[int] = None
        self._request_started = time.perf_counter()
        # Honour a well-formed incoming trace ID, mint one otherwise; the
        # effective ID is echoed back in the response headers and rides the
        # contextvar into every span this handler thread records.
        self._trace_token, self._trace_id = obs_trace.begin(
            self.headers.get(obs_trace.HEADER)
        )
        self.server.request_begun()

    def _end_request(self) -> None:
        elapsed = time.perf_counter() - self._request_started
        self.server.observe_request(
            _endpoint_label(self.path), self.command,
            self._status if self._status is not None else 0, elapsed,
        )
        obs_trace.end(self._trace_token)
        self.server.request_done()
        self.server.publish_stats()

    def _read_body(self) -> object:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            raise ServiceError("Content-Length header is not an integer") from exc
        if length < 0:
            # rfile.read(-N) would read to EOF and hang the keep-alive
            # connection; a negative length is a malformed request, full stop.
            raise ServiceError("Content-Length must be a non-negative integer")
        if length > MAX_BODY_BYTES:
            raise ServiceError("request body too large", status=413)
        raw = self.rfile.read(length) if length else b""
        self._body_consumed = True
        if not raw:
            raise ServiceError("request body must be JSON (got an empty body)")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc

    def _body_left_on_socket(self) -> bool:
        """Whether unread (or unknowable) request-body bytes remain.

        True means the connection cannot be reused for another request:
        whatever follows on the socket is body, not a request line.
        """
        if getattr(self, "_body_consumed", False):
            return False
        raw = self.headers.get("Content-Length")
        if raw is None:
            return False  # no declared body (the usual GET / 404 case)
        try:
            return int(raw) != 0
        except ValueError:
            return True  # a lying header: nothing about the socket is known

    def _respond(self, status: int, payload: dict, close: bool = False) -> None:
        self._send_body(status, json.dumps(payload).encode(),
                        "application/json", close)

    def _send_body(self, status: int, body: bytes, content_type: str,
                   close: bool = False) -> None:
        self._status = status
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            if getattr(self, "_trace_id", None):
                self.send_header(obs_trace.HEADER, self._trace_id)
            if close:
                # send_header("Connection", "close") also flips
                # self.close_connection, ending the keep-alive loop.
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except (ConnectionError, socket.timeout) as exc:
            # The client went away mid-response.  That is terminal for the
            # connection: never write again (a "second response" would go
            # to a dead socket) and never log a traceback for it.
            self._connection_dead = True
            self.close_connection = True
            if getattr(self.server, "verbose", False):
                self.log_message("client disconnected mid-response: %r", exc)

    def _respond_ok(self, payload: dict) -> None:
        payload = dict(payload)
        payload["ok"] = True
        payload["cache"] = self.session.stats().to_json()
        if self.server.worker_label is not None:
            payload["worker"] = self.server.worker_label
        self._respond(200, payload)

    def _respond_error(self, status: int, message: str) -> None:
        if getattr(self, "_connection_dead", False):
            return
        self._respond(
            status, {"ok": False, "error": message},
            close=self._body_left_on_socket(),
        )

    # ------------------------------------------------------------- endpoints

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._begin_request()
        try:
            if self.path in ("/health", "/healthz"):
                # ``ready`` flips once --preload finishes (always True
                # without one); queries are answered either way — a
                # not-ready worker just builds cold.
                ready = getattr(self.server, "ready", True)
                started_at = self.server.started_at
                self._respond_ok({
                    "status": "serving" if ready else "preloading",
                    "ready": ready,
                    # Restart forensics: a load balancer (or an operator)
                    # tells a freshly restarted worker from a long-lived one
                    # by its uptime, and a mixed-version front by `version`.
                    "started_at": round(started_at, 3),
                    "uptime_seconds": round(time.time() - started_at, 3),
                    "version": __version__,
                    "schema_version": SCHEMA_VERSION,
                })
            elif self.path == "/stats":
                self._respond_ok(self.server.stats_payload())
            elif self.path == "/metrics":
                self._send_body(200, self.server.metrics_exposition().encode(),
                                obs_metrics.CONTENT_TYPE)
            else:
                self._respond_error(404, f"unknown endpoint {self.path!r}")
        except ConnectionError:
            self.close_connection = True
        finally:
            self._end_request()

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._begin_request()
        try:
            with obs_trace.span(f"http.{_endpoint_label(self.path)}"):
                if self.path == "/check":
                    self._handle_check()
                elif self.path == "/synthesize":
                    self._handle_synthesize()
                elif self.path == "/batch":
                    self._handle_batch()
                else:
                    self._respond_error(404, f"unknown endpoint {self.path!r}")
        except ServiceError as exc:
            self._respond_error(exc.status, str(exc))
        except ConnectionError:
            # Reading from (or responding to) a dead connection: terminal,
            # nothing further to say to anyone.
            self.close_connection = True
        except Exception as exc:  # pragma: no cover - defensive: report, don't die
            if not getattr(self, "_connection_dead", False):
                self._respond_error(500, f"internal error: {exc}")
        finally:
            self._end_request()

    def _handle_check(self) -> None:
        document = self._read_body()
        scenario = _parse_scenario(document)
        temporal = bool(document.get("temporal", False))
        try:
            if temporal:
                result = self.session.check_temporal(scenario)
            else:
                result = self.session.check(scenario)
        except ValueError as exc:
            raise ServiceError(str(exc)) from exc
        self._respond_ok({"result": result.to_json()})

    def _handle_synthesize(self) -> None:
        document = self._read_body()
        scenario = _parse_scenario(document)
        try:
            result = self.session.synthesize(scenario)
        except ValueError as exc:
            raise ServiceError(str(exc)) from exc
        self._respond_ok({"result": result.to_json()})

    def _handle_batch(self) -> None:
        document = self._read_body()
        if not isinstance(document, dict) or not isinstance(
            document.get("requests"), list
        ):
            raise ServiceError("batch body must carry a 'requests' JSON array")
        requests = []
        for position, entry in enumerate(document["requests"]):
            if not isinstance(entry, dict):
                raise ServiceError(f"batch request {position} must be a JSON object")
            op = entry.get("op", "check")
            if op not in QUERY_OPS:
                raise ServiceError(
                    f"batch request {position}: unknown op {op!r} "
                    f"(expected one of {QUERY_OPS})"
                )
            requests.append((op, _parse_scenario(entry)))
        try:
            results = self.session.batch(requests)
        except ValueError as exc:
            raise ServiceError(str(exc)) from exc
        self._respond_ok({"results": [result.to_json() for result in results]})


class ReproServer(ThreadingHTTPServer):
    """A threading HTTP server with a shared :class:`Session`.

    ``listening_socket`` adopts an already-bound socket instead of binding a
    new one — the pre-fork front binds once in the parent and every forked
    worker accepts on its inherited copy.  ``worker_label``/``stats_dir``
    wire the worker into the aggregated ``/stats`` view: after each request
    the worker publishes its counter snapshot to ``stats_dir``, and any
    worker answering ``/stats`` reads all of its siblings' snapshots back.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        session: Optional[Session] = None,
        verbose: bool = False,
        listening_socket: Optional[socket.socket] = None,
        worker_label: Optional[str] = None,
        stats_dir: Optional[str] = None,
        max_inflight: Optional[int] = None,
        ready_event: Optional[threading.Event] = None,
    ) -> None:
        super().__init__(address, ReproRequestHandler, bind_and_activate=False)
        if listening_socket is not None:
            self.socket.close()
            self.socket = listening_socket
            host, port = listening_socket.getsockname()[:2]
            self.server_address = (host, port)
            self.server_name = socket.getfqdn(host)
            self.server_port = port
        else:
            self.server_bind()
            self.server_activate()
        self.session = session if session is not None else Session()
        self.verbose = verbose
        self.worker_label = worker_label
        self.stats_dir = stats_dir
        self.max_inflight = max_inflight
        self.started_at = time.time()
        self.metrics = obs_metrics.REGISTRY
        self._m_http = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests by endpoint, method and status",
        )
        self._m_http_seconds = self.metrics.histogram(
            "repro_http_request_seconds",
            "HTTP request latency by endpoint",
        )
        self._m_start_time = self.metrics.gauge(
            "repro_process_start_time_seconds",
            "Unix time this serving process started",
        )
        self._m_start_time.set(round(self.started_at, 3))
        self._m_cache_entries = self.metrics.gauge(
            "repro_session_cache_entries",
            "Artefacts resident in the session cache",
        )
        self._m_cache_weight = self.metrics.gauge(
            "repro_session_cache_weight_bytes",
            "Estimated resident bytes of the session cache",
        )
        #: Set once a background --preload completes; None = nothing to wait
        #: for (the server was born ready).
        self.ready_event = ready_event
        self._active_requests = 0  # guarded by: _active_lock
        self._active_connections = 0  # guarded by: _active_lock
        self._active_lock = threading.Lock()

    @property
    def ready(self) -> bool:
        """False only while a ``--preload`` build is still running."""
        return self.ready_event is None or self.ready_event.is_set()

    def server_activate(self) -> None:
        # Adopted sockets are already listening; activating again is fine
        # for fresh binds and a no-op for inherited ones.
        self.socket.listen(self.request_queue_size)

    def get_request(self):
        # Accept backpressure (see WORKER_MAX_INFLIGHT): while this worker
        # is saturated, leave the ready connection in the shared listen
        # backlog for an idle sibling instead of accepting and queueing it
        # behind our in-flight builds.  Saturation counts *connections*
        # from accept to close — the accept loop re-enters this method
        # before the handler thread has even begun the request, so a
        # requests-begun counter would race and let extra connections in.
        # The wait breaks immediately on shutdown so a saturated worker
        # still drains promptly.
        if self.max_inflight is not None:
            while (self.active_connections >= self.max_inflight
                   and not getattr(self, "_BaseServer__shutdown_request",
                                   False)):
                time.sleep(0.005)
        request, client_address = super().get_request()
        with self._active_lock:
            self._active_connections += 1
        return request, client_address

    def shutdown_request(self, request):
        try:
            super().shutdown_request(request)
        finally:
            with self._active_lock:
                self._active_connections -= 1

    # ------------------------------------------------------------- draining

    def request_begun(self) -> None:
        with self._active_lock:
            self._active_requests += 1

    def request_done(self) -> None:
        with self._active_lock:
            self._active_requests -= 1

    @property
    def active_requests(self) -> int:
        with self._active_lock:
            return self._active_requests

    @property
    def active_connections(self) -> int:
        with self._active_lock:
            return self._active_connections

    # --------------------------------------------------------------- metrics

    def observe_request(self, endpoint: str, method: str, status: int,
                        seconds: float) -> None:
        """Record one finished HTTP request in the process metrics."""
        self._m_http.inc(endpoint=endpoint, method=method, status=status)
        self._m_http_seconds.observe(seconds, endpoint=endpoint)

    def _refresh_gauges(self) -> None:
        stats = self.session.stats()
        self._m_cache_entries.set(stats.entries)
        self._m_cache_weight.set(stats.weight_bytes)

    def metrics_exposition(self) -> str:
        """The Prometheus text body for ``GET /metrics``.

        Single-process servers expose their own registry.  Pre-fork workers
        publish their snapshot into the shared ``stats/`` directory on every
        request, so any worker can render the whole front: each sibling's
        series carries a ``worker`` label (summing over it gives the
        front-wide aggregate, the way any Prometheus setup aggregates
        instances).
        """
        self._refresh_gauges()
        if self.stats_dir is None:
            return self.metrics.exposition()
        self.publish_stats()  # this worker's own snapshot must be fresh
        snapshots = []
        for label, record in sorted(self._read_worker_records().items()):
            snapshot = record.get("metrics")
            if isinstance(snapshot, dict):
                snapshots.append((label, snapshot))
        return obs_metrics.render_exposition(snapshots)

    # ------------------------------------------------- per-worker statistics

    def publish_stats(self) -> None:
        """Write this worker's labelled counter snapshot for aggregation."""
        if self.stats_dir is None or self.worker_label is None:
            return
        self._refresh_gauges()
        record = {
            "worker": self.worker_label,
            "pid": os.getpid(),
            "updated": time.time(),
            "cache": self.session.stats().to_json(),
            "metrics": self.metrics.snapshot(),
        }
        path = Path(self.stats_dir) / f"{self.worker_label}.json"
        tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(record, sort_keys=True))
            os.replace(str(tmp), str(path))
        except OSError:  # stats are best-effort; serving must not care
            try:
                tmp.unlink()
            except OSError:
                pass

    def _read_worker_records(self) -> Dict[str, Dict[str, object]]:
        """Every sibling worker's published snapshot, keyed by label."""
        workers: Dict[str, Dict[str, object]] = {}
        try:
            entries = sorted(Path(self.stats_dir).glob("worker-*.json"))
        except OSError:  # pragma: no cover - stats dir vanished
            entries = []
        for entry in entries:
            try:
                record = json.loads(entry.read_text())
            except (OSError, ValueError):  # torn or vanished: skip this one
                continue
            if isinstance(record, dict) and isinstance(record.get("cache"), dict):
                workers[str(record.get("worker", entry.stem))] = record
        return workers

    def stats_payload(self) -> Dict[str, object]:
        """The extra ``/stats`` payload: per-worker views plus aggregate."""
        if self.stats_dir is None:
            return {}
        self.publish_stats()  # this worker's own view must be fresh
        workers = self._read_worker_records()
        return {
            "workers": workers,
            "aggregate": SessionStats.aggregate_json(
                [record["cache"] for record in workers.values()]
            ),
        }


def make_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    session: Optional[Session] = None,
    verbose: bool = False,
    listening_socket: Optional[socket.socket] = None,
    worker_label: Optional[str] = None,
    stats_dir: Optional[str] = None,
    max_inflight: Optional[int] = None,
    ready_event: Optional[threading.Event] = None,
) -> ReproServer:
    """Build (but do not start) a service instance; ``port=0`` picks a free port."""
    return ReproServer(
        (host, port), session=session, verbose=verbose,
        listening_socket=listening_socket, worker_label=worker_label,
        stats_dir=stats_dir, max_inflight=max_inflight,
        ready_event=ready_event,
    )


# --------------------------------------------------------------- serve fronts


def _build_session(
    cache_size: int,
    store_dir: Optional[str],
    store_pickle: bool,
    store_max_bytes: Optional[int] = None,
    store_max_entries: Optional[int] = None,
    preloaded: Optional[Preloader] = None,
) -> Session:
    """The serving session, honouring the benchmark build-delay seam."""
    store = None
    if store_dir is not None:
        store = ArtefactStore(
            store_dir, allow_pickle=store_pickle,
            max_bytes=store_max_bytes, max_entries=store_max_entries,
        )
    try:
        delay = float(os.environ.get(BUILD_DELAY_ENV) or 0.0)
    except ValueError:
        delay = 0.0
    if delay <= 0:
        return Session(max_entries=cache_size, store=store, preloaded=preloaded)

    gil_model = threading.Lock()  # one per process, like the GIL it models

    class _SimulatedComputeSession(Session):
        def _invoke_build(self, key, build):
            if key[0] == "result":
                with gil_model:
                    time.sleep(delay)
            return super()._invoke_build(key, build)

    return _SimulatedComputeSession(
        max_entries=cache_size, store=store, preloaded=preloaded
    )


def _run_preload(preloader: Preloader, cells) -> Dict[str, int]:
    """Build the frontier's spaces into ``preloader`` (honouring the seam)."""
    try:
        delay = float(os.environ.get(PRELOAD_DELAY_ENV) or 0.0)
    except ValueError:
        delay = 0.0
    if delay > 0:
        time.sleep(delay)
    return preloader.preload_cells(cells)


def _answer_while_preloading(
    listening: socket.socket, stop: threading.Event, started_at: float
) -> threading.Thread:
    """Answer probes on the bound socket while the pre-fork parent preloads.

    The socket is bound and listening before the preload starts, so clients
    can connect immediately; this minimal responder tells them the truth —
    ``/health`` with ``ready: false``, 503 for anything else, every response
    ``Connection: close`` — until the workers fork and take over.  The
    listening socket is put in timeout mode for the accept loop; the caller
    restores blocking mode (``settimeout(None)``) before forking, since the
    underlying O_NONBLOCK flag would ride the fork into every worker.
    """

    def _respond(conn: socket.socket) -> None:
        try:
            conn.settimeout(1.0)
            raw = conn.recv(65536)
            request_line = raw.split(b"\r\n", 1)[0].split()
            path = request_line[1].decode("latin-1") if len(request_line) > 1 else ""
            if path in ("/health", "/healthz"):
                status = b"200 OK"
                body = json.dumps(
                    {"ok": True, "status": "preloading", "ready": False,
                     "started_at": round(started_at, 3),
                     "uptime_seconds": round(time.time() - started_at, 3),
                     "version": __version__,
                     "schema_version": SCHEMA_VERSION}
                ).encode()
            else:
                status = b"503 Service Unavailable"
                body = json.dumps(
                    {"ok": False, "error": "service is preloading",
                     "ready": False}
                ).encode()
            conn.sendall(
                b"HTTP/1.0 " + status + b"\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _loop() -> None:
        while not stop.is_set():
            try:
                conn, _ = listening.accept()
            except socket.timeout:
                continue
            except OSError:  # pragma: no cover - socket torn down
                break
            _respond(conn)

    listening.settimeout(0.2)
    thread = threading.Thread(target=_loop, daemon=True, name="preload-gate")
    thread.start()
    return thread


def _run_worker(
    listening_socket: socket.socket,
    label: str,
    cache_size: int,
    verbose: bool,
    store_dir: Optional[str],
    store_pickle: bool,
    store_max_bytes: Optional[int],
    store_max_entries: Optional[int],
    stats_dir: str,
    preloaded: Optional[Preloader] = None,
) -> int:
    """One forked worker: accept on the inherited socket until signalled.

    ``preloaded`` is the parent's preloader, inherited copy-on-write across
    the fork: the worker's session serves space lookups from it instead of
    building them cold on the first queries.
    """
    server = make_server(
        session=_build_session(
            cache_size, store_dir, store_pickle,
            store_max_bytes, store_max_entries, preloaded=preloaded,
        ),
        verbose=verbose,
        listening_socket=listening_socket,
        worker_label=label,
        stats_dir=stats_dir,
        max_inflight=WORKER_MAX_INFLIGHT,
    )

    def _shut_down(signum, frame):  # noqa: ARG001 - signal handler shape
        # shutdown() blocks until serve_forever() exits, and *this* thread
        # is inside serve_forever — hand the call to a helper thread.  The
        # Thread construction is allocator-heavy for a signal handler, but
        # it is the socketserver-documented shutdown-from-handler shape and
        # runs once, at process exit.
        threading.Thread(target=server.shutdown, daemon=True).start()  # lint: disable=FORK01

    signal.signal(signal.SIGTERM, _shut_down)
    signal.signal(signal.SIGINT, _shut_down)
    server.publish_stats()  # visible in /stats before the first request
    try:
        server.serve_forever(poll_interval=0.1)
        deadline = time.monotonic() + DRAIN_SECONDS
        while server.active_requests and time.monotonic() < deadline:
            time.sleep(0.05)
    finally:
        server.server_close()
    return 0


def _restart_backoff() -> float:
    try:
        value = float(
            os.environ.get(RESTART_BACKOFF_ENV) or DEFAULT_RESTART_BACKOFF
        )
    except ValueError:
        value = DEFAULT_RESTART_BACKOFF
    return max(value, 0.0)


def _serve_prefork(
    host: str,
    port: int,
    workers: int,
    cache_size: int,
    verbose: bool,
    store_dir: Optional[str],
    store_pickle: bool,
    store_max_bytes: Optional[int],
    store_max_entries: Optional[int],
    preload_cells=None,
) -> int:
    """The pre-fork front: bind once, fork N accept-loop workers, supervise.

    Every worker runs the full threaded server over its inherited copy of
    the one listening socket, so the kernel load-balances connections at
    ``accept()`` level.  The parent only supervises: a worker that dies is
    restarted (with exponential backoff per worker slot, so a crash loop
    cannot spin), SIGINT/SIGTERM fan out to every worker, and workers that
    ignore the fan-out are SIGKILLed after a grace period.

    With ``preload_cells`` the parent builds the frontier's space artefacts
    *before* forking — one build, inherited copy-on-write by every worker
    (and every restarted worker, since the supervisor keeps the artefacts
    alive) — while a minimal responder on the already-bound socket answers
    ``/health`` with ``ready: false`` so probes see the truth during the
    build.  A failed preload downgrades to cold serving rather than refusing
    to start.
    """
    parent_started = time.time()
    listening = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listening.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        listening.bind((host, port))
    except OSError:
        listening.close()
        raise
    listening.listen(128)
    bound_host, bound_port = listening.getsockname()[:2]

    if store_dir is not None:
        stats_root = Path(store_dir) / _STATS_DIR_NAME
    else:
        stats_root = Path(tempfile.mkdtemp(prefix="repro-serve-stats-"))
    stats_root.mkdir(parents=True, exist_ok=True)

    preloader: Optional[Preloader] = None
    if preload_cells:
        _LOG.info(
            "repro serve: preloading %d frontier cells on http://%s:%s "
            "(health reports ready: false until done)",
            len(preload_cells), bound_host, bound_port,
        )
        preloader = Preloader()
        gate_stop = threading.Event()
        gate = _answer_while_preloading(listening, gate_stop, parent_started)
        try:
            summary = _run_preload(preloader, preload_cells)
            _LOG.info(
                "repro serve: preloaded %d spaces (%d states) for %d "
                "frontier cells",
                summary["spaces"], summary["states"], len(preload_cells),
            )
        except Exception as exc:
            _LOG.warning("repro serve: preload failed (%s); serving cold", exc)
            preloader = None
        finally:
            gate_stop.set()
            gate.join()
            listening.settimeout(None)  # O_NONBLOCK must not ride the fork

    def spawn(index: int) -> int:
        pid = os.fork()
        if pid == 0:
            # Forked worker: shed the parent's supervisor state before
            # anything can go wrong, then serve.
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            signal.signal(signal.SIGINT, signal.SIG_DFL)
            signal.signal(signal.SIGALRM, signal.SIG_DFL)
            code = 1
            try:
                code = _run_worker(
                    listening, f"worker-{index}", cache_size, verbose,
                    store_dir, store_pickle, store_max_bytes,
                    store_max_entries, str(stats_root), preloaded=preloader,
                )
            except KeyboardInterrupt:  # pragma: no cover - pre-handler race
                code = 0
            finally:
                os._exit(code)
        return pid

    children: Dict[int, int] = {}  # pid -> worker slot index
    restarts: Dict[int, int] = {}  # worker slot index -> consecutive restarts
    stopping = False
    backoff_base = _restart_backoff()

    def _fan_out(signum, frame):  # noqa: ARG001 - signal handler shape
        nonlocal stopping
        stopping = True
        for pid in list(children):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        # If a worker ignores the fan-out, escalate via SIGALRM.
        signal.alarm(int(SHUTDOWN_GRACE_SECONDS))

    def _escalate(signum, frame):  # noqa: ARG001 - signal handler shape
        for pid in list(children):
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass

    signal.signal(signal.SIGTERM, _fan_out)
    signal.signal(signal.SIGINT, _fan_out)
    signal.signal(signal.SIGALRM, _escalate)

    for index in range(workers):
        children[spawn(index)] = index

    store_note = f"; store {store_dir}" if store_dir is not None else ""
    _LOG.info(
        "repro serve: listening on http://%s:%s (%d workers, cache %d "
        "entries per worker%s; endpoints: /check /synthesize /batch /health "
        "/stats /metrics)",
        bound_host, bound_port, workers, cache_size, store_note,
    )

    while children:
        try:
            pid, status = os.waitpid(-1, 0)
        except ChildProcessError:  # pragma: no cover - all children reaped
            break
        except InterruptedError:  # pragma: no cover - pre-3.5 semantics
            continue
        index = children.pop(pid, None)
        if index is None or stopping:
            continue
        exit_code = os.waitstatus_to_exitcode(status)
        restarts[index] = restarts.get(index, 0) + 1
        delay = min(backoff_base * (2 ** (restarts[index] - 1)), 30.0)
        _LOG.warning(
            "repro serve: worker-%d (pid %d) exited unexpectedly (%s); "
            "restarting in %.1fs", index, pid, exit_code, delay,
        )
        if delay:
            time.sleep(delay)
        if stopping:  # the fan-out signal may land during the backoff sleep
            continue
        children[spawn(index)] = index

    signal.alarm(0)
    listening.close()
    _LOG.info("repro serve: shut down")
    return 0


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    cache_size: int = 64,
    verbose: bool = False,
    store_dir: Optional[str] = None,
    store_pickle: bool = False,
    workers: int = 1,
    store_max_bytes: Optional[int] = None,
    store_max_entries: Optional[int] = None,
    preload: Optional[str] = None,
    log_format: str = "text",
    log_level: str = "info",
) -> int:
    """Run the JSON service until interrupted (the ``repro serve`` command).

    ``store_dir`` adds the persistent artefact-store tier: results built by
    this process are published there, and repeated queries — including ones
    first answered by *another* process sharing the directory — are served
    from it without rebuilding.  ``store_pickle`` additionally persists
    pickled space artefacts (only enable for trusted store directories).
    ``store_max_bytes``/``store_max_entries`` bound the store: the session
    compacts it (oldest entries first, by mtime) as it writes.

    ``workers > 1`` runs the pre-fork front: the socket is bound once here,
    then N forked workers accept on it concurrently — the way to put every
    core behind one port, since a single CPython process is GIL-bound on
    cold builds no matter how its threads are arranged.

    ``preload`` names a scenario frontier (e.g. ``table1`` or
    ``table1:max-n=4``, see :func:`repro.runtime.preload.parse_frontier`):
    the spaces those cells read are built once up front — before forking,
    under ``--workers N``, so all workers share the build copy-on-write —
    and ``/health`` reports ``ready: false`` until the build completes.
    Raises ``ValueError`` for a malformed spec before binding the socket.

    ``log_format``/``log_level`` configure the diagnostics stream (see
    :func:`repro.obs.log.setup`): ``text`` (the default) is byte-compatible
    with the historical ``print`` output, ``json`` emits one structured
    record per line; ``--log-level debug`` additionally surfaces the
    per-request trace spans.
    """
    obs_log.setup(log_format, log_level)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    preload_cells = parse_frontier(preload) if preload else None
    if workers > 1:
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            raise ValueError("--workers requires a platform with os.fork")
        return _serve_prefork(
            host, port, workers, cache_size, verbose, store_dir,
            store_pickle, store_max_bytes, store_max_entries,
            preload_cells=preload_cells,
        )
    preloader = Preloader() if preload_cells else None
    ready_event = threading.Event() if preload_cells else None
    server = make_server(
        host, port,
        session=_build_session(
            cache_size, store_dir, store_pickle,
            store_max_bytes, store_max_entries, preloaded=preloader,
        ),
        verbose=verbose,
        ready_event=ready_event,
    )
    bound_host, bound_port = server.server_address[:2]
    store_note = f"; store {store_dir}" if store_dir is not None else ""
    preload_note = f"; preloading {preload}" if preload else ""
    _LOG.info(
        "repro serve: listening on http://%s:%s (cache %d entries%s%s; "
        "endpoints: /check /synthesize /batch /health /stats /metrics)",
        bound_host, bound_port, cache_size, store_note, preload_note,
    )
    if preload_cells:
        # Background preload: the server answers immediately (cold queries
        # build as usual), /health flips to ready once the build lands.
        # Races with concurrent cold queries are benign — the preloader
        # publishes each space only after its build completes.
        def _preload_in_background() -> None:
            try:
                summary = _run_preload(preloader, preload_cells)
                _LOG.info("repro serve: preloaded %d spaces (%d states)",
                          summary["spaces"], summary["states"])
            except Exception as exc:
                _LOG.warning("repro serve: preload failed (%s); serving cold",
                             exc)
            finally:
                ready_event.set()

        threading.Thread(
            target=_preload_in_background, daemon=True, name="preload"
        ).start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    _LOG.info("repro serve: shut down")
    return 0
