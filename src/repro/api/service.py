"""``repro serve``: a long-running JSON-over-HTTP query service.

The service exposes the :class:`~repro.api.session.Session` facade over
plain stdlib HTTP (no third-party dependencies), which is the first piece of
the serving story: one resident process keeps the per-scenario artefacts
warm, so the many small epistemic queries the paper's workloads consist of
are answered from the session cache instead of rebuilding state spaces per
request.

Endpoints (all JSON):

* ``POST /check`` — body ``{"scenario": {...}, "temporal": false}``; model
  checks the scenario (``temporal: true`` runs the temporal-only ablation).
* ``POST /synthesize`` — body ``{"scenario": {...}}``; synthesizes the
  knowledge-based program implementation.
* ``POST /batch`` — body ``{"requests": [{"op": "check"|"temporal"|
  "synthesize", "scenario": {...}}, ...]}``; runs the whole batch on the
  shared session and returns the results in order.
* ``GET /health`` — liveness probe (also reports the cache statistics).
* ``GET /stats`` — the session's cumulative cache statistics.

Every successful response carries ``{"ok": true, "result": <typed result
JSON>, "cache": <stats>}``; the result payloads are the versioned schema of
:mod:`repro.api.results` (``schema_version`` included), and errors come
back as ``{"ok": false, "error": ...}`` with a 4xx status.  Scenario
documents are validated by :meth:`Scenario.from_json`, so a typo'd field is
a 400, never a silently-defaulted query.

The server is a ``ThreadingHTTPServer`` over one shared session with
per-cache-key build locks: concurrent *different* requests build their
artefacts in parallel, while concurrent *identical* requests coalesce onto
a single build (visible as the ``coalesced`` counter in ``/stats``).  With
``--store DIR`` the session is backed by a persistent
:class:`~repro.api.artefact_store.ArtefactStore`, so a restarted or second
server process pointed at the same directory answers repeated queries from
the store tier instead of rebuilding.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.api.artefact_store import ArtefactStore
from repro.api.scenario import Scenario
from repro.api.session import QUERY_OPS, Session

#: Default bind address and port for ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

#: Largest accepted request body, a guard against accidental floods.
MAX_BODY_BYTES = 1 << 20


class ServiceError(ValueError):
    """A client error with the HTTP status it should map to."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _parse_scenario(document: object) -> Scenario:
    if not isinstance(document, dict):
        raise ServiceError("request body must be a JSON object")
    scenario_doc = document.get("scenario")
    if not isinstance(scenario_doc, dict):
        raise ServiceError("request must carry a 'scenario' JSON object")
    try:
        return Scenario.from_json(scenario_doc)
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"invalid scenario: {exc}") from exc


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Request handler bound to the server's shared session."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def session(self) -> Session:
        return self.server.session

    def _read_body(self) -> object:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            raise ServiceError("Content-Length header is not an integer") from exc
        if length > MAX_BODY_BYTES:
            raise ServiceError("request body too large", status=413)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError("request body must be JSON (got an empty body)")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_ok(self, payload: dict) -> None:
        payload = dict(payload)
        payload["ok"] = True
        payload["cache"] = self.session.stats().to_json()
        self._respond(200, payload)

    def _respond_error(self, status: int, message: str) -> None:
        self._respond(status, {"ok": False, "error": message})

    # ------------------------------------------------------------- endpoints

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        if self.path in ("/health", "/healthz"):
            self._respond_ok({"status": "serving"})
        elif self.path == "/stats":
            self._respond_ok({})
        else:
            self._respond_error(404, f"unknown endpoint {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        try:
            if self.path == "/check":
                self._handle_check()
            elif self.path == "/synthesize":
                self._handle_synthesize()
            elif self.path == "/batch":
                self._handle_batch()
            else:
                self._respond_error(404, f"unknown endpoint {self.path!r}")
        except ServiceError as exc:
            self._respond_error(exc.status, str(exc))
        except Exception as exc:  # pragma: no cover - defensive: report, don't die
            self._respond_error(500, f"internal error: {exc}")

    def _handle_check(self) -> None:
        document = self._read_body()
        scenario = _parse_scenario(document)
        temporal = bool(document.get("temporal", False))
        try:
            if temporal:
                result = self.session.check_temporal(scenario)
            else:
                result = self.session.check(scenario)
        except ValueError as exc:
            raise ServiceError(str(exc)) from exc
        self._respond_ok({"result": result.to_json()})

    def _handle_synthesize(self) -> None:
        document = self._read_body()
        scenario = _parse_scenario(document)
        try:
            result = self.session.synthesize(scenario)
        except ValueError as exc:
            raise ServiceError(str(exc)) from exc
        self._respond_ok({"result": result.to_json()})

    def _handle_batch(self) -> None:
        document = self._read_body()
        if not isinstance(document, dict) or not isinstance(
            document.get("requests"), list
        ):
            raise ServiceError("batch body must carry a 'requests' JSON array")
        requests = []
        for position, entry in enumerate(document["requests"]):
            if not isinstance(entry, dict):
                raise ServiceError(f"batch request {position} must be a JSON object")
            op = entry.get("op", "check")
            if op not in QUERY_OPS:
                raise ServiceError(
                    f"batch request {position}: unknown op {op!r} "
                    f"(expected one of {QUERY_OPS})"
                )
            requests.append((op, _parse_scenario(entry)))
        try:
            results = self.session.batch(requests)
        except ValueError as exc:
            raise ServiceError(str(exc)) from exc
        self._respond_ok({"results": [result.to_json() for result in results]})


class ReproServer(ThreadingHTTPServer):
    """A threading HTTP server with a shared :class:`Session`."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        session: Optional[Session] = None,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ReproRequestHandler)
        self.session = session if session is not None else Session()
        self.verbose = verbose


def make_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    session: Optional[Session] = None,
    verbose: bool = False,
) -> ReproServer:
    """Build (but do not start) a service instance; ``port=0`` picks a free port."""
    return ReproServer((host, port), session=session, verbose=verbose)


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    cache_size: int = 64,
    verbose: bool = False,
    store_dir: Optional[str] = None,
    store_pickle: bool = False,
) -> int:
    """Run the JSON service until interrupted (the ``repro serve`` command).

    ``store_dir`` adds the persistent artefact-store tier: results built by
    this process are published there, and repeated queries — including ones
    first answered by *another* process sharing the directory — are served
    from it without rebuilding.  ``store_pickle`` additionally persists
    pickled space artefacts (only enable for trusted store directories).
    """
    store = ArtefactStore(store_dir, allow_pickle=store_pickle) \
        if store_dir is not None else None
    server = make_server(
        host, port,
        session=Session(max_entries=cache_size, store=store),
        verbose=verbose,
    )
    bound_host, bound_port = server.server_address[:2]
    store_note = f"; store {store_dir}" if store_dir is not None else ""
    print(f"repro serve: listening on http://{bound_host}:{bound_port} "
          f"(cache {cache_size} entries{store_note}; endpoints: /check "
          f"/synthesize /batch /health /stats)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    print("repro serve: shut down", flush=True)
    return 0
