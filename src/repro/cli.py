"""Command-line interface for the reproduction experiments.

Examples::

    python -m repro table1 --max-n 4 --timeout 60 --workers 4
    python -m repro table3 --max-n 3 --timeout 120 --output table3.jsonl
    python -m repro table3 --max-n 3 --output table3.jsonl --resume
    python -m repro report table3.jsonl --format csv
    python -m repro synthesize --exchange floodset --agents 3 --faulty 1
    python -m repro check --exchange floodset --agents 3 --faulty 2
    python -m repro check --exchange floodset --agents 3 --faulty 2 --engine symbolic
    python -m repro table3 --max-n 3 --engine symbolic --output table3-sym.jsonl
    python -m repro table2 --max-n 3 --no-share-spaces   # per-cell rebuild baseline
    python -m repro serve --port 8765
    python -m repro serve --workers 4 --preload table1:max-n=4
    python -m repro serve --workers 4 --store /var/cache/repro --store-max-bytes 268435456
    python -m repro store stats /var/cache/repro
    python -m repro store compact /var/cache/repro --max-entries 1000
    python -m repro lint
    python -m repro lint --rule DET01 --format json
    python -m repro lint --baseline lint-baseline.json --fail-on finding

Every command goes through the :mod:`repro.api` facade: ``check`` and
``synthesize`` construct a validated :class:`~repro.api.Scenario`, the table
commands resolve their grids through scenarios (so journal keys are
canonical), and ``serve`` runs the long-lived JSON-over-HTTP service on one
shared :class:`~repro.api.Session` whose cache answers repeated queries
without rebuilding state spaces.

The table commands print the same row/column structure as the paper's
Tables 1–3, with ``TO`` entries for cases exceeding the time budget.  With
``--workers N`` cells run on a pool of N concurrent forked children; with
``--output FILE`` every completed cell is journalled so ``--resume`` can
pick an interrupted sweep back up and ``report`` can re-render the results
(text, JSON or CSV) without re-running anything.  ``--engine`` selects the
satisfaction backend (bitset, symbolic BDD, or the set-based reference
oracle); it is recorded in every journalled cell's key and in the spec
record, so resumed grids never silently mix backends.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.api import Scenario, Session
from repro.api.service import DEFAULT_HOST, DEFAULT_PORT, serve
from repro.devtools.rules import RULE_CODES
from repro.engines import DEFAULT_ENGINE, ENGINES
from repro.failures import FAILURE_MODELS
from repro.harness.runner import run_case
from repro.harness.store import ResultStore
from repro.harness.tables import (
    TableResult,
    ablation_failure_models,
    ablation_temporal_only,
    render_csv,
    render_json,
    render_table,
    render_timings,
    run_table,
    table1_spec,
    table2_spec,
    table3_spec,
)
from repro.obs import profile as obs_profile

RENDERERS = {"text": render_table, "json": render_json, "csv": render_csv}


def default_workers() -> int:
    """The default worker-pool size: one worker per available CPU."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _scenario_from_args(args: argparse.Namespace) -> Scenario:
    """The validated scenario for a one-shot ``check``/``synthesize`` command.

    ``--failures`` left unset means the paper's default for the exchange's
    family (crash for SBA, sending omissions for EBA), which is exactly
    ``Scenario``'s own normalisation.
    """
    return Scenario(
        exchange=args.exchange,
        num_agents=args.agents,
        max_faulty=args.faulty,
        num_values=getattr(args, "values", 2),
        failures=args.failures,
        optimal_protocol=getattr(args, "optimal", False),
        engine=args.engine,
    )


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout", type=float, default=60.0,
        help="wall-clock budget per table cell in seconds (default 60)",
    )
    parser.add_argument(
        "--max-states", type=int, default=2_000_000,
        help="state budget per table cell (default 2,000,000)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="do not print per-cell progress"
    )


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=default_workers(),
        help="concurrent table cells (default: one per available CPU, "
             f"here {default_workers()})",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="journal every completed cell to this JSON-lines results file",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip cells already completed in the --output results file",
    )
    parser.add_argument(
        "--format", choices=sorted(RENDERERS), default="text",
        help="final rendering of the table (default: text)",
    )
    parser.add_argument(
        "--share-spaces", action=argparse.BooleanOptionalAction, default=True,
        help="build each distinct state space once in the scheduler and fork "
             "the cells that read it from the prebuilt copy (default on; "
             "--no-share-spaces is the per-cell rebuild baseline)",
    )


def _render_result(result: TableResult, fmt: str) -> str:
    return RENDERERS[fmt](result)


def _table_command(args: argparse.Namespace) -> int:
    if args.command == "table1":
        spec = table1_spec(max_n=args.max_n, engine=args.engine)
    elif args.command == "table2":
        spec = table2_spec(max_n=args.max_n, engine=args.engine)
    elif args.command == "table3":
        spec = table3_spec(max_n=args.max_n, engine=args.engine)
    elif args.command == "ablation-temporal":
        spec = ablation_temporal_only(max_n=args.max_n, engine=args.engine)
    elif args.command == "ablation-failures":
        spec = ablation_failure_models(max_n=args.max_n, engine=args.engine)
    else:  # pragma: no cover - argparse restricts the choices
        raise ValueError(args.command)
    if args.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    if args.resume and args.output is None:
        print("--resume requires --output (the results file to resume from)",
              file=sys.stderr)
        return 2
    try:
        store = ResultStore(args.output) if args.output is not None else None
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    result = run_table(
        spec,
        timeout=args.timeout,
        max_states=args.max_states,
        verbose=not args.quiet,
        workers=args.workers,
        store=store,
        resume=args.resume,
        share_spaces=args.share_spaces,
    )
    print(_render_result(result, args.format))
    if store is not None and not args.quiet:
        print(f"results journalled to {store.path}", file=sys.stderr)
    return 0


def _report_command(args: argparse.Namespace) -> int:
    if not os.path.exists(args.results):
        print(f"no results file at {args.results}", file=sys.stderr)
        return 2
    try:
        result = ResultStore(args.results).load_result()
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.timings:
        print(render_timings(result))
        return 0
    print(_render_result(result, args.format))
    return 0


def _synthesize_command(args: argparse.Namespace) -> int:
    try:
        scenario = _scenario_from_args(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    session = Session()
    result = session.synthesis_artifact(scenario)
    if scenario.family == "sba":
        print(f"Synthesized SBA conditions for {scenario.exchange} "
              f"(n={scenario.num_agents}, t={scenario.max_faulty}, "
              f"{scenario.failures} failures, {scenario.engine} engine):")
    else:
        print(f"Synthesized EBA conditions for {scenario.exchange} "
              f"(n={scenario.num_agents}, t={scenario.max_faulty}, "
              f"{scenario.failures} failures, {scenario.engine} engine, "
              f"{result.iterations} iterations, "
              f"converged={result.converged}):")
    print(result.conditions.describe(method=args.minimise))
    return 0


def _check_command(args: argparse.Namespace) -> int:
    try:
        scenario = _scenario_from_args(args)
        task = scenario.check_task()
        params = scenario.to_params(task)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.profile:
        # The check runs in a forked child, which re-reads this variable on
        # start-up — setting it here covers both the fork and, for
        # timeout-less in-process runs, the current process.
        os.environ[obs_profile.ENV_VAR] = "1"
    # The forked runner keeps the paper's per-run wall-clock budget
    # enforceable; the cell parameters are the scenario's canonical form.
    outcome = run_case(task, params, timeout=args.timeout)
    print(f"result: {outcome.cell()}")
    if outcome.result is not None:
        for key, value in outcome.result.items():
            print(f"  {key}: {value}")
    if outcome.profile and outcome.profile.get("kernels"):
        print(obs_profile.render_table(outcome.profile))
    if outcome.error:
        print(outcome.error, file=sys.stderr)
        return 1
    return 0


def _serve_command(args: argparse.Namespace) -> int:
    if args.cache_size < 1:
        print("--cache-size must be at least 1", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    for flag, value in (("--store-max-bytes", args.store_max_bytes),
                        ("--store-max-entries", args.store_max_entries)):
        if value is not None:
            if args.store is None:
                print(f"{flag} requires --store", file=sys.stderr)
                return 2
            if value < 1:
                print(f"{flag} must be at least 1", file=sys.stderr)
                return 2
    if args.preload is not None:
        # Validate the frontier spec before binding a socket: a typo'd
        # --preload should exit 2 immediately, not serve cold.
        from repro.runtime.preload import parse_frontier

        try:
            parse_frontier(args.preload)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    return serve(
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        verbose=not args.quiet,
        store_dir=args.store,
        store_pickle=args.store_pickle,
        workers=args.workers,
        store_max_bytes=args.store_max_bytes,
        store_max_entries=args.store_max_entries,
        preload=args.preload,
        log_format=args.log_format,
        log_level=args.log_level,
    )


def _store_command(args: argparse.Namespace) -> int:
    import json

    from repro.api.artefact_store import ArtefactStore

    if not os.path.isdir(args.dir):
        print(f"no store directory at {args.dir}", file=sys.stderr)
        return 2
    store = ArtefactStore(args.dir)
    if args.store_command == "stats":
        print(json.dumps(store.disk_stats(), indent=2, sort_keys=True))
        return 0
    # compact
    if args.max_bytes is None and args.max_entries is None:
        print("store compact needs --max-bytes and/or --max-entries",
              file=sys.stderr)
        return 2
    for flag, value in (("--max-bytes", args.max_bytes),
                        ("--max-entries", args.max_entries)):
        if value is not None and value < 1:
            print(f"{flag} must be at least 1", file=sys.stderr)
            return 2
    summary = store.compact(
        max_bytes=args.max_bytes, max_entries=args.max_entries
    )
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _lint_command(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.devtools import (
        Baseline,
        LintEngine,
        render_json as render_lint_json,
        render_text as render_lint_text,
        rules_for,
    )

    if args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(f"no such path: {missing[0]}", file=sys.stderr)
            return 2
        rel_to: Optional[Path] = Path.cwd()
    else:
        # Default target: the installed repro package itself, reported
        # relative to its parent so findings read "repro/api/service.py".
        package_root = Path(repro.__file__).resolve().parent
        paths = [package_root]
        rel_to = package_root.parent

    baseline = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(f"no baseline file at {baseline_path}", file=sys.stderr)
            return 2
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    engine = LintEngine(rules_for(args.rules or None), baseline=baseline)
    report = engine.run(paths, rel_to=rel_to)
    renderer = render_lint_json if args.format == "json" else render_lint_text
    print(renderer(report))

    if args.fail_on == "never":
        return 0
    if report.findings and args.fail_on == "finding":
        return 2
    if report.errors:
        return 2
    return 0


def _add_failures_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--failures", choices=FAILURE_MODELS, default=None,
        help="failure model (default: sending omissions for EBA exchanges, "
             "crash for SBA exchanges, as in the paper)",
    )


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    # choices= validates the name the same way --failures is validated: an
    # unknown engine exits with status 2 and the list of known backends.
    parser.add_argument(
        "--engine", choices=ENGINES, default=DEFAULT_ENGINE,
        help="satisfaction engine: the explicit packed-bitset engine (the "
             "default), the symbolic BDD backend, or the set-based reference "
             f"oracle (default: {DEFAULT_ENGINE})",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Epistemic model checking and synthesis for consensus protocols",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for table in ("table1", "table2", "table3", "ablation-temporal", "ablation-failures"):
        sub = subparsers.add_parser(table, help=f"run the {table} experiment grid")
        sub.add_argument("--max-n", type=int, default=4, help="largest number of agents")
        _add_budget_arguments(sub)
        _add_grid_arguments(sub)
        _add_engine_argument(sub)
        sub.set_defaults(func=_table_command)

    report = subparsers.add_parser(
        "report", help="re-render a stored results file without re-running"
    )
    report.add_argument("results", help="a results file written with --output")
    report.add_argument(
        "--format", choices=sorted(RENDERERS), default="text",
        help="rendering of the stored table (default: text)",
    )
    report.add_argument(
        "--timings", action="store_true",
        help="render per-column build/check latency percentiles (p50/p95) "
             "from the journalled timing splits instead of the result grid",
    )
    report.set_defaults(func=_report_command)

    synth = subparsers.add_parser("synthesize", help="synthesize one configuration")
    synth.add_argument("--exchange", required=True)
    synth.add_argument("--agents", type=int, required=True)
    synth.add_argument("--faulty", type=int, required=True)
    synth.add_argument("--values", type=int, default=2)
    _add_failures_argument(synth)
    _add_engine_argument(synth)
    synth.add_argument(
        "--minimise", choices=("auto", "qm", "espresso"), default="auto",
        help="condition-minimisation backend: exact Quine-McCluskey, the "
             "espresso-style heuristic, or auto (QM below the variable "
             "threshold, espresso above; the default)",
    )
    synth.set_defaults(func=_synthesize_command)

    check = subparsers.add_parser("check", help="model check one configuration")
    check.add_argument("--exchange", required=True)
    check.add_argument("--agents", type=int, required=True)
    check.add_argument("--faulty", type=int, required=True)
    check.add_argument("--values", type=int, default=2)
    _add_failures_argument(check)
    _add_engine_argument(check)
    check.add_argument("--optimal", action="store_true",
                       help="check the optimal (revised) literature protocol")
    check.add_argument("--timeout", type=float, default=600.0)
    check.add_argument(
        "--profile", action="store_true",
        help="time the hot kernels (bitset intersections, predecessor "
             "images, BDD ite/and_exists) and print a per-kernel summary "
             "table; equivalent to REPRO_PROFILE=1",
    )
    check.set_defaults(func=_check_command)

    srv = subparsers.add_parser(
        "serve", help="run the JSON-over-HTTP query service on a shared session"
    )
    srv.add_argument("--host", default=DEFAULT_HOST,
                     help=f"bind address (default {DEFAULT_HOST})")
    srv.add_argument("--port", type=int, default=DEFAULT_PORT,
                     help=f"bind port (default {DEFAULT_PORT}; 0 picks a free port)")
    srv.add_argument("--cache-size", type=int, default=64,
                     help="bound on the shared session's artefact cache "
                          "(default 64 entries)")
    srv.add_argument("--store", metavar="DIR", default=None,
                     help="persistent artefact store directory: results are "
                          "published here and repeated queries (from this or "
                          "any other process sharing the directory) are "
                          "answered without rebuilding")
    srv.add_argument("--store-pickle", action="store_true",
                     help="also persist pickled space artefacts in --store "
                          "(unpickling runs code: only for trusted store "
                          "directories)")
    srv.add_argument("--workers", type=int, default=1,
                     help="serve from this many forked worker processes "
                          "accepting on one shared socket (default 1; use "
                          "one per core to put the whole machine behind "
                          "one port — a single process is GIL-bound on "
                          "cold builds)")
    srv.add_argument("--store-max-bytes", type=int, default=None,
                     metavar="N",
                     help="bound the --store directory to ~N bytes of live "
                          "entries; least recently used entries are "
                          "compacted away as the service writes")
    srv.add_argument("--store-max-entries", type=int, default=None,
                     metavar="N",
                     help="bound the --store directory to N live entries "
                          "(compacted like --store-max-bytes)")
    srv.add_argument("--preload", metavar="SPEC", default=None,
                     help="build the state spaces of a scenario frontier "
                          "before serving, e.g. 'table1' or "
                          "'table1:max-n=4,engine=bitset'; under --workers "
                          "the build happens once pre-fork and every worker "
                          "shares it copy-on-write, and /health reports "
                          "ready: false until it completes")
    srv.add_argument("--log-format", choices=("text", "json"), default="text",
                     help="diagnostic log rendering: plain text (the "
                          "default, byte-compatible with earlier releases) "
                          "or one JSON object per line")
    srv.add_argument("--log-level", default="info",
                     choices=("debug", "info", "warning", "error"),
                     help="minimum diagnostic log level (default info; "
                          "debug also emits per-span trace records)")
    srv.add_argument("--quiet", action="store_true",
                     help="do not log individual requests")
    srv.set_defaults(func=_serve_command)

    store = subparsers.add_parser(
        "store", help="inspect or compact a persistent artefact store"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_commands.add_parser(
        "stats", help="print entry counts and byte totals per subdirectory"
    )
    store_stats.add_argument("dir", help="the artefact store directory")
    store_stats.set_defaults(func=_store_command)
    store_compact = store_commands.add_parser(
        "compact",
        help="drop least-recently-used entries until the store fits "
             "the given bounds",
    )
    store_compact.add_argument("dir", help="the artefact store directory")
    store_compact.add_argument("--max-bytes", type=int, default=None,
                               metavar="N", help="byte bound to compact to")
    store_compact.add_argument("--max-entries", type=int, default=None,
                               metavar="N", help="entry bound to compact to")
    store_compact.set_defaults(func=_store_command)

    lint = subparsers.add_parser(
        "lint",
        help="run the project-native static analysis rules "
             "(determinism, locking, fork/signal, fd lifecycle, imports)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the installed "
             "repro package source)",
    )
    lint.add_argument(
        "--rule", action="append", dest="rules", choices=RULE_CODES,
        metavar="CODE",
        help="run only this rule (repeatable; default: all of "
             f"{', '.join(RULE_CODES)})",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="JSON baseline of grandfathered findings; matching findings "
             "are suppressed (every entry needs a justification)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report rendering (json output carries a schema_version "
             "field like the results schema)",
    )
    lint.add_argument(
        "--fail-on", choices=("finding", "error", "never"),
        default="finding",
        help="exit 2 on findings (default), only on engine errors, or "
             "never",
    )
    lint.set_defaults(func=_lint_command)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
