"""The optimality order over decision protocols (Section 4 of the paper).

Two protocols ``P`` and ``P'`` that use the same information exchange ``E``
and failure model ``F`` are compared over *corresponding runs* — runs with the
same initial global state, i.e. the same initial preferences and the same
failure pattern.  ``P <=_{E,F} P'`` holds when, on every corresponding run and
for every agent, ``P`` does not decide later than ``P'``.

``P`` is *optimum* when ``P <= P'`` for every correct protocol ``P'``; it is
*optimal* when no correct protocol decides no later everywhere and strictly
earlier somewhere.  This module provides the machinery for comparing two given
protocols run by run; the global statements over "all protocols" come from the
knowledge-based analysis (see :mod:`repro.kbp.implementation`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.systems.model import BAModel
from repro.systems.runs import Adversary, simulate_run
from repro.systems.space import DecisionRule


@dataclass
class RunComparison:
    """Decision times of two protocols on one corresponding run."""

    votes: Tuple[int, ...]
    adversary: Adversary
    times_first: Dict[int, Optional[int]]
    times_second: Dict[int, Optional[int]]

    def first_never_later(self) -> bool:
        """Whether the first protocol decides no later than the second, per agent."""
        for agent, second_time in self.times_second.items():
            first_time = self.times_first.get(agent)
            if second_time is None:
                continue
            if first_time is None or first_time > second_time:
                return False
        return True

    def first_strictly_earlier(self) -> bool:
        """Whether the first protocol decides strictly earlier for some agent."""
        for agent, first_time in self.times_first.items():
            second_time = self.times_second.get(agent)
            if first_time is None:
                continue
            if second_time is None or first_time < second_time:
                return True
        return False


@dataclass
class OptimalityReport:
    """Aggregate of run-by-run comparisons between two protocols."""

    comparisons: List[RunComparison] = field(default_factory=list)

    def first_never_later(self) -> bool:
        """``P <=_{E,F} P'`` restricted to the compared runs."""
        return all(comparison.first_never_later() for comparison in self.comparisons)

    def first_strictly_earlier_somewhere(self) -> bool:
        """Whether the first protocol is strictly earlier on some compared run."""
        return any(
            comparison.first_strictly_earlier() for comparison in self.comparisons
        )

    def violations(self, limit: Optional[int] = None) -> List[RunComparison]:
        """Runs on which the first protocol decides later than the second."""
        found = [
            comparison
            for comparison in self.comparisons
            if not comparison.first_never_later()
        ]
        return found if limit is None else found[:limit]


def compare_protocols(
    model: BAModel,
    first: DecisionRule,
    second: DecisionRule,
    adversaries: Iterable[Adversary],
    votes_list: Optional[Sequence[Tuple[int, ...]]] = None,
    horizon: Optional[int] = None,
) -> OptimalityReport:
    """Compare two protocols on all corresponding runs over the given adversaries.

    ``votes_list`` defaults to every assignment of initial preferences.  Only
    decision times of agents that are correct under the adversary are
    recorded, matching the definition in the paper (which tracks when each
    agent decides; faulty agents' decisions do not matter for the order).
    """
    if horizon is None:
        horizon = model.default_horizon()
    if votes_list is None:
        votes_list = list(product(model.values(), repeat=model.num_agents))

    adversaries = list(adversaries)
    report = OptimalityReport()
    for adversary in adversaries:
        correct = adversary.correct_agents(model.num_agents)
        for votes in votes_list:
            run_first = simulate_run(model, first, votes, adversary, horizon)
            run_second = simulate_run(model, second, votes, adversary, horizon)
            report.comparisons.append(
                RunComparison(
                    votes=tuple(votes),
                    adversary=adversary,
                    times_first={
                        agent: run_first.decision_time(agent) for agent in correct
                    },
                    times_second={
                        agent: run_second.decision_time(agent) for agent in correct
                    },
                )
            )
    return report


def never_later(report: OptimalityReport) -> bool:
    """Convenience wrapper for ``report.first_never_later()``."""
    return report.first_never_later()


def strictly_earlier_somewhere(report: OptimalityReport) -> bool:
    """Convenience wrapper for ``report.first_strictly_earlier_somewhere()``."""
    return report.first_strictly_earlier_somewhere()
