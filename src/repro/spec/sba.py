"""The Simultaneous Byzantine Agreement specification.

Formulas follow the ``spec_obs`` statements in the paper's appendix script:
agreement among non-failed agents, uniform agreement, validity, termination,
and the knowledge condition ``B^N_i CB_N ∃v`` used by the knowledge-based
program.  Run-level checks of the same properties are provided for the
explicit-run machinery (property-based tests and optimality comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.logic.atoms import (
    decided,
    decision_is,
    exists_value,
    nonfaulty,
)
from repro.logic.builders import (
    AX_power,
    big_and,
    big_or,
    common_belief_exists,
    implies,
)
from repro.logic.formula import Always, Formula, Iff
from repro.systems.model import BAModel
from repro.systems.runs import Run


def _same_decision(agent_a: int, agent_b: int, num_values: int) -> Formula:
    return big_or(
        big_and([decision_is(agent_a, value), decision_is(agent_b, value)])
        for value in range(num_values)
    )


def sba_agreement_formula(model: BAModel) -> Formula:
    """``AG``: non-failed agents that have decided agree on the value."""
    clauses = []
    for agent_a in model.agents():
        for agent_b in model.agents():
            if agent_a >= agent_b:
                continue
            premise = big_and(
                [
                    nonfaulty(agent_a),
                    decided(agent_a),
                    nonfaulty(agent_b),
                    decided(agent_b),
                ]
            )
            clauses.append(
                implies(premise, _same_decision(agent_a, agent_b, model.num_values))
            )
    return Always(big_and(clauses))


def sba_uniform_agreement_formula(model: BAModel) -> Formula:
    """``AG``: *all* agents that have decided agree (uniform agreement)."""
    clauses = []
    for agent_a in model.agents():
        for agent_b in model.agents():
            if agent_a >= agent_b:
                continue
            premise = big_and([decided(agent_a), decided(agent_b)])
            clauses.append(
                implies(premise, _same_decision(agent_a, agent_b, model.num_values))
            )
    return Always(big_and(clauses))


def sba_validity_formula(model: BAModel) -> Formula:
    """``AG``: every decided value is the initial preference of some agent."""
    clauses = []
    for agent in model.agents():
        for value in model.values():
            clauses.append(implies(decision_is(agent, value), exists_value(value)))
    return Always(big_and(clauses))


def sba_simultaneity_formula(model: BAModel) -> Formula:
    """``AG``: at every point, either all nonfaulty agents have decided or none.

    Together with agreement this captures the Simultaneous-Agreement(N)
    requirement: decisions of nonfaulty agents happen in the same round.
    """
    clauses = []
    for agent_a in model.agents():
        for agent_b in model.agents():
            if agent_a >= agent_b:
                continue
            premise = big_and([nonfaulty(agent_a), nonfaulty(agent_b)])
            clauses.append(implies(premise, Iff(decided(agent_a), decided(agent_b))))
    return Always(big_and(clauses))


def sba_termination_formula(model: BAModel, horizon: int) -> Formula:
    """``AX^horizon``: every nonfaulty agent has decided by the horizon."""
    goal = big_and(
        implies(nonfaulty(agent), decided(agent)) for agent in model.agents()
    )
    return AX_power(horizon, goal)


def sba_knowledge_condition(agent: int, value: int) -> Formula:
    """The decision condition of program ``P``: ``B^N_i CB_N ∃v``."""
    return common_belief_exists(agent, value)


def sba_spec_formulas(model: BAModel, horizon: int) -> Dict[str, Formula]:
    """The full set of SBA specification formulas, keyed by name."""
    return {
        "agreement": sba_agreement_formula(model),
        "uniform_agreement": sba_uniform_agreement_formula(model),
        "validity": sba_validity_formula(model),
        "simultaneity": sba_simultaneity_formula(model),
        "termination": sba_termination_formula(model, horizon),
    }


# ---------------------------------------------------------------------------
# Run-level checks
# ---------------------------------------------------------------------------


@dataclass
class SpecViolation:
    """A single violation of a specification property in a run."""

    property_name: str
    detail: str


@dataclass
class RunReport:
    """The outcome of checking a run against a specification."""

    violations: List[SpecViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violations were found."""
        return not self.violations

    def add(self, property_name: str, detail: str) -> None:
        """Record a violation."""
        self.violations.append(SpecViolation(property_name, detail))


def check_sba_run(run: Run, model: BAModel, horizon: int) -> RunReport:
    """Check Unique-Decision, Agreement, Simultaneity, Validity, Termination."""
    report = RunReport()
    correct = run.adversary.correct_agents(model.num_agents)

    # Unique decision is structural (the builders never let a decided agent
    # decide again); double-check by counting decide actions per agent.
    for agent in model.agents():
        decide_count = sum(
            1 for joint in run.actions if joint[agent] is not None
        )
        if decide_count > 1:
            report.add("unique-decision", f"agent {agent} decided {decide_count} times")

    deciders = [agent for agent in correct if run.decided(agent)]

    # Simultaneous agreement among correct agents.
    for agent_a in deciders:
        for agent_b in deciders:
            if agent_a >= agent_b:
                continue
            if run.decision_value(agent_a) != run.decision_value(agent_b):
                report.add(
                    "agreement",
                    f"agents {agent_a} and {agent_b} decided "
                    f"{run.decision_value(agent_a)} vs {run.decision_value(agent_b)}",
                )
            if run.decision_time(agent_a) != run.decision_time(agent_b):
                report.add(
                    "simultaneity",
                    f"agents {agent_a} and {agent_b} decided at times "
                    f"{run.decision_time(agent_a)} vs {run.decision_time(agent_b)}",
                )

    # Validity: decided values must be someone's initial preference.
    for agent in model.agents():
        if run.decided(agent) and run.decision_value(agent) not in run.votes:
            report.add(
                "validity",
                f"agent {agent} decided {run.decision_value(agent)} "
                f"which is not an initial preference {run.votes}",
            )

    # Termination: every correct agent decides within the horizon.
    for agent in correct:
        if not run.decided(agent):
            report.add("termination", f"agent {agent} never decided")
        elif run.decision_time(agent) > horizon:
            report.add(
                "termination",
                f"agent {agent} decided only at time {run.decision_time(agent)}",
            )

    return report
