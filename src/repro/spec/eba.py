"""The Eventual Byzantine Agreement specification.

EBA replaces Simultaneous-Agreement(N) by plain Agreement(N): nonfaulty
agents that decide must decide the same value, but not necessarily in the
same round (Section 8 of the paper).
"""

from __future__ import annotations

from typing import Dict

from repro.logic.atoms import decided, decision_is, exists_value, nonfaulty
from repro.logic.builders import AX_power, big_and, big_or, implies
from repro.logic.formula import Always, Formula
from repro.spec.sba import RunReport
from repro.systems.model import BAModel
from repro.systems.runs import Run


def eba_agreement_formula(model: BAModel) -> Formula:
    """``AG``: nonfaulty agents that have decided agree on the value."""
    clauses = []
    for agent_a in model.agents():
        for agent_b in model.agents():
            if agent_a >= agent_b:
                continue
            premise = big_and(
                [
                    nonfaulty(agent_a),
                    decided(agent_a),
                    nonfaulty(agent_b),
                    decided(agent_b),
                ]
            )
            same = big_or(
                big_and([decision_is(agent_a, value), decision_is(agent_b, value)])
                for value in model.values()
            )
            clauses.append(implies(premise, same))
    return Always(big_and(clauses))


def eba_validity_formula(model: BAModel) -> Formula:
    """``AG``: every decided value is the initial preference of some agent."""
    clauses = []
    for agent in model.agents():
        for value in model.values():
            clauses.append(implies(decision_is(agent, value), exists_value(value)))
    return Always(big_and(clauses))


def eba_termination_formula(model: BAModel, horizon: int) -> Formula:
    """``AX^horizon``: every nonfaulty agent has decided by the horizon."""
    goal = big_and(
        implies(nonfaulty(agent), decided(agent)) for agent in model.agents()
    )
    return AX_power(horizon, goal)


def eba_spec_formulas(model: BAModel, horizon: int) -> Dict[str, Formula]:
    """The full set of EBA specification formulas, keyed by name."""
    return {
        "agreement": eba_agreement_formula(model),
        "validity": eba_validity_formula(model),
        "termination": eba_termination_formula(model, horizon),
    }


def check_eba_run(run: Run, model: BAModel, horizon: int) -> RunReport:
    """Run-level check of Unique-Decision, Agreement, Validity, Termination."""
    report = RunReport()
    correct = run.adversary.correct_agents(model.num_agents)

    for agent in model.agents():
        decide_count = sum(1 for joint in run.actions if joint[agent] is not None)
        if decide_count > 1:
            report.add("unique-decision", f"agent {agent} decided {decide_count} times")

    deciders = [agent for agent in correct if run.decided(agent)]
    for agent_a in deciders:
        for agent_b in deciders:
            if agent_a >= agent_b:
                continue
            if run.decision_value(agent_a) != run.decision_value(agent_b):
                report.add(
                    "agreement",
                    f"agents {agent_a} and {agent_b} decided "
                    f"{run.decision_value(agent_a)} vs {run.decision_value(agent_b)}",
                )

    for agent in model.agents():
        if run.decided(agent) and run.decision_value(agent) not in run.votes:
            report.add(
                "validity",
                f"agent {agent} decided {run.decision_value(agent)} "
                f"which is not an initial preference {run.votes}",
            )

    for agent in correct:
        if not run.decided(agent):
            report.add("termination", f"agent {agent} never decided")
        elif run.decision_time(agent) > horizon:
            report.add(
                "termination",
                f"agent {agent} decided only at time {run.decision_time(agent)}",
            )

    return report
