"""Specifications of the consensus problems and the optimality order.

* :mod:`repro.spec.sba` — Simultaneous Byzantine Agreement: Unique-Decision,
  Simultaneous-Agreement(N), Validity(N) and Termination, both as formulas
  for the model checker and as run-level checks.
* :mod:`repro.spec.eba` — Eventual Byzantine Agreement: Agreement(N),
  Validity(N) and Termination.
* :mod:`repro.spec.optimality` — the order ``P <=_{E,F} P'`` over
  corresponding runs and the derived notions of optimal and optimum
  protocols (Section 4 of the paper).
"""

from repro.spec.sba import (
    sba_agreement_formula,
    sba_knowledge_condition,
    sba_simultaneity_formula,
    sba_spec_formulas,
    sba_termination_formula,
    sba_uniform_agreement_formula,
    sba_validity_formula,
    check_sba_run,
)
from repro.spec.eba import (
    eba_agreement_formula,
    eba_spec_formulas,
    eba_termination_formula,
    eba_validity_formula,
    check_eba_run,
)
from repro.spec.optimality import (
    OptimalityReport,
    RunComparison,
    compare_protocols,
    never_later,
    strictly_earlier_somewhere,
)

__all__ = [
    "sba_agreement_formula",
    "sba_uniform_agreement_formula",
    "sba_validity_formula",
    "sba_simultaneity_formula",
    "sba_termination_formula",
    "sba_knowledge_condition",
    "sba_spec_formulas",
    "check_sba_run",
    "eba_agreement_formula",
    "eba_validity_formula",
    "eba_termination_formula",
    "eba_spec_formulas",
    "check_eba_run",
    "OptimalityReport",
    "RunComparison",
    "compare_protocols",
    "never_later",
    "strictly_earlier_somewhere",
]
