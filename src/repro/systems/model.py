"""The Byzantine-Agreement model: information exchange + failure model.

:class:`BAModel` combines an :class:`~repro.systems.exchange.InformationExchange`
with a :class:`~repro.failures.base.FailureModel` and exposes everything the
state-space builder, the model checker and the synthesizer need:

* the initial global states (all assignments of initial preferences times all
  initial environment states),
* the successor relation for one synchronous round, given the joint decision
  action chosen by the agents,
* agent observations (for the clock semantics of knowledge),
* the interpretation of atomic propositions,
* the indexical nonfaulty set ``N``.

A global state is a pair of an environment state (owned by the failure model)
and a tuple of per-agent local states (owned by the exchange).  Both parts are
hashable, so global states can be deduplicated per time level.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.failures.base import DeliveryMode, FailureModel
from repro.systems.actions import Action, JointAction, NOOP
from repro.systems.exchange import InformationExchange


@dataclass(frozen=True)
class GlobalState:
    """A global state: environment state plus one local state per agent."""

    env: Hashable
    locals: Tuple[Tuple, ...]

    def local(self, agent: int) -> Tuple:
        """The local state of ``agent``."""
        return self.locals[agent]


class BAModel:
    """A Byzantine-Agreement model ``(E, F)`` over ``n`` agents.

    Parameters
    ----------
    exchange:
        The information-exchange protocol ``E``.
    failures:
        The failure model ``F``.  Must agree with the exchange on the number
        of agents and the failure bound.
    """

    def __init__(self, exchange: InformationExchange, failures: FailureModel) -> None:
        if exchange.num_agents != failures.num_agents:
            raise ValueError("exchange and failure model disagree on the number of agents")
        if exchange.max_faulty != failures.max_faulty:
            raise ValueError("exchange and failure model disagree on the failure bound")
        self.exchange = exchange
        self.failures = failures
        self.num_agents = exchange.num_agents
        self.num_values = exchange.num_values
        self.max_faulty = exchange.max_faulty
        # Memoisation of local-state updates; the same (agent, local, action,
        # received) combination recurs across many global states.
        self._update_cache: Dict[Tuple, Tuple] = {}

    # ------------------------------------------------------------------ setup

    def agents(self) -> range:
        """All agent identifiers."""
        return range(self.num_agents)

    def values(self) -> range:
        """The decision value domain ``V``."""
        return range(self.num_values)

    def default_horizon(self) -> int:
        """The number of rounds modelled (``t + 2`` by default)."""
        return self.exchange.default_horizon()

    def initial_states(self) -> Iterator[GlobalState]:
        """All initial global states (votes x initial environment states)."""
        for env in self.failures.initial_env_states():
            for votes in product(self.values(), repeat=self.num_agents):
                locals_ = tuple(
                    self.exchange.initial_local(agent, votes[agent])
                    for agent in self.agents()
                )
                yield GlobalState(env, locals_)

    # ------------------------------------------------------------- transitions

    def successors(
        self, state: GlobalState, joint_action: JointAction, time: int
    ) -> Iterator[GlobalState]:
        """All successor global states after one round.

        ``joint_action`` is the tuple of decision actions performed by the
        agents at time ``time`` (``NOOP`` for agents that do not decide).  The
        nondeterminism resolved here is the failure model's: which agents
        newly fail this round, and which unreliable messages are delivered.
        """
        failures = self.failures
        exchange = self.exchange
        env = state.env

        for choice in failures.round_choices(env):
            new_env = failures.apply_choice(env, choice)
            messages: List[Optional[Hashable]] = []
            for sender in self.agents():
                if not failures.can_send(env, choice, sender):
                    messages.append(None)
                else:
                    messages.append(
                        exchange.message(
                            sender, state.locals[sender], joint_action[sender], time
                        )
                    )

            recipient_options: List[Sequence[Tuple]] = []
            for recipient in self.agents():
                options = self._recipient_options(
                    state, joint_action, time, env, choice, messages, recipient
                )
                recipient_options.append(options)

            for locals_ in product(*recipient_options):
                yield GlobalState(new_env, tuple(locals_))

    def _recipient_options(
        self,
        state: GlobalState,
        joint_action: JointAction,
        time: int,
        env: Hashable,
        choice: Hashable,
        messages: Sequence[Optional[Hashable]],
        recipient: int,
    ) -> Sequence[Tuple]:
        """Distinct possible new local states of ``recipient`` this round."""
        certain: List[Tuple[int, Hashable]] = []
        optional: List[Tuple[int, Hashable]] = []
        for sender in self.agents():
            message = messages[sender]
            if message is None:
                continue
            mode = self.failures.delivery_mode(env, choice, sender, recipient)
            if mode is DeliveryMode.ALWAYS:
                certain.append((sender, message))
            elif mode is DeliveryMode.OPTIONAL:
                optional.append((sender, message))

        seen: Dict[Tuple, None] = {}
        for size in range(len(optional) + 1):
            for extra in combinations(optional, size):
                received = dict(certain)
                received.update(dict(extra))
                new_local = self._updated_local(
                    recipient,
                    state.locals[recipient],
                    joint_action[recipient],
                    received,
                    time,
                )
                seen.setdefault(new_local, None)
        return list(seen)

    def _updated_local(
        self,
        agent: int,
        local: Tuple,
        action: Action,
        received: Dict[int, Hashable],
        time: int,
    ) -> Tuple:
        """Apply the exchange update and the central decided/decision update."""
        key = (agent, local, action, tuple(sorted(received.items())), time)
        cached = self._update_cache.get(key)
        if cached is not None:
            return cached
        new_local = self.exchange.update(agent, local, action, received, time)
        if action is not NOOP and not local.decided:
            new_local = new_local._replace(decided=True, decision=action)
        self._update_cache[key] = new_local
        return new_local

    # ------------------------------------------------------------ observations

    def observation(self, state: GlobalState, agent: int) -> Tuple:
        """The clock-semantics observation of ``agent`` (time excluded)."""
        return self.exchange.observation(agent, state.locals[agent])

    def observation_features(self, state: GlobalState, agent: int) -> Dict[str, Hashable]:
        """Named observable features of ``agent`` in this state."""
        return self.exchange.observation_features(agent, state.locals[agent])

    def nonfaulty(self, state: GlobalState, agent: int) -> bool:
        """Whether ``agent`` is in the indexical nonfaulty set at this state."""
        return self.failures.nonfaulty(state.env, agent)

    def can_act(self, state: GlobalState, agent: int) -> bool:
        """Whether ``agent`` still executes its decision protocol."""
        return self.failures.can_act(state.env, agent)

    # ----------------------------------------------------------------- labels

    def eval_atom(
        self,
        state: GlobalState,
        time: int,
        key: Hashable,
        joint_action: Optional[JointAction] = None,
    ) -> bool:
        """Interpret a structured atomic proposition at a point.

        ``joint_action`` supplies the actions chosen at this point, which is
        needed only for the ``decides_now`` atoms.
        """
        kind = key[0] if isinstance(key, tuple) and key else key
        if kind == "init":
            _, agent, value = key
            return state.locals[agent].init == value
        if kind == "exists":
            _, value = key
            return any(local.init == value for local in state.locals)
        if kind == "decided":
            _, agent = key
            return bool(state.locals[agent].decided)
        if kind == "decision":
            _, agent, value = key
            local = state.locals[agent]
            return bool(local.decided) and local.decision == value
        if kind == "some_decided":
            _, value = key
            return any(
                local.decided and local.decision == value for local in state.locals
            )
        if kind == "decides_now":
            _, agent, value = key
            if joint_action is None:
                raise ValueError(
                    "decides_now atoms require the joint action at the point"
                )
            return joint_action[agent] == value
        if kind == "nonfaulty":
            _, agent = key
            return self.nonfaulty(state, agent)
        if kind == "time":
            _, when = key
            return time == when
        if kind == "obs":
            _, agent, feature, value = key
            features = self.observation_features(state, agent)
            if feature not in features:
                raise KeyError(
                    f"unknown observable feature {feature!r} for exchange "
                    f"{self.exchange.name!r}"
                )
            return features[feature] == value
        raise KeyError(f"unknown atomic proposition {key!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BAModel(exchange={self.exchange.name!r}, "
            f"failures={self.failures.name!r}, n={self.num_agents}, "
            f"t={self.max_faulty}, v={self.num_values})"
        )
