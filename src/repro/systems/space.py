"""Levelled reachable state spaces.

Under the clock semantics of knowledge, an agent's local state is the pair
``(time, observation)``, so two points are epistemically related only when
they occur at the same time.  This makes a *levelled* representation of the
reachable state space the natural data structure: the set of reachable global
states is stored per time level, together with the joint decision action taken
at each state and the successor relation between consecutive levels.

The space is built incrementally, one level at a time.  This is exactly what
knowledge-based-program synthesis needs: the knowledge conditions at time
``m`` depend only on the reachable states at time ``m``, which in turn depend
only on the actions chosen at earlier times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.systems.actions import Action, JointAction, NOOP
from repro.systems.model import BAModel, GlobalState

#: A point of the system: (time, index of the state within that level).
Point = Tuple[int, int]


def _pack(indices) -> int:
    """Pack an iterable of state indices into a bitmask."""
    bits = 0
    for index in indices:
        bits |= 1 << index
    return bits


class SpaceBudgetExceeded(RuntimeError):
    """Raised when a state-space build exceeds its configured state budget.

    The benchmark harness converts this (together with wall-clock timeouts)
    into the paper's "TO" table entries.
    """


@dataclass
class LevelledSpace:
    """The reachable state space of ``I_{E,F,P}`` organised by time level."""

    model: BAModel
    horizon: int
    levels: List[List[GlobalState]] = field(default_factory=list)
    index_of: List[Dict[GlobalState, int]] = field(default_factory=list)
    actions: List[List[JointAction]] = field(default_factory=list)
    successors: List[List[List[int]]] = field(default_factory=list)
    max_states: Optional[int] = None

    # ------------------------------------------------------------ construction

    @classmethod
    def initial(
        cls, model: BAModel, horizon: Optional[int] = None, max_states: Optional[int] = None
    ) -> "LevelledSpace":
        """Create a space containing only the initial level (time 0)."""
        if horizon is None:
            horizon = model.default_horizon()
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        space = cls(model=model, horizon=horizon, max_states=max_states)
        level: List[GlobalState] = []
        index: Dict[GlobalState, int] = {}
        for state in model.initial_states():
            if state not in index:
                index[state] = len(level)
                level.append(state)
        space.levels.append(level)
        space.index_of.append(index)
        space._check_budget()
        return space

    def last_level(self) -> int:
        """The index of the most recently built level."""
        return len(self.levels) - 1

    def is_complete(self) -> bool:
        """True when every level up to the horizon has been built."""
        return self.last_level() >= self.horizon

    def set_actions(self, level: int, joint_actions: List[JointAction]) -> None:
        """Record the joint action chosen at each state of ``level``."""
        if level != len(self.actions):
            raise ValueError(
                f"actions must be set level by level (expected level {len(self.actions)},"
                f" got {level})"
            )
        if len(joint_actions) != len(self.levels[level]):
            raise ValueError("one joint action per state of the level is required")
        self.actions.append(list(joint_actions))

    def extend(self) -> int:
        """Build the next level from the last level and its recorded actions.

        Returns the index of the newly built level.
        """
        level = self.last_level()
        if level >= self.horizon:
            raise ValueError("space is already complete")
        if len(self.actions) <= level:
            raise ValueError("actions for the current level must be set before extending")

        model = self.model
        new_level: List[GlobalState] = []
        new_index: Dict[GlobalState, int] = {}
        edges: List[List[int]] = []
        for state, joint_action in zip(self.levels[level], self.actions[level]):
            targets: List[int] = []
            seen: set = set()
            for successor in model.successors(state, joint_action, level):
                position = new_index.get(successor)
                if position is None:
                    position = len(new_level)
                    new_index[successor] = position
                    new_level.append(successor)
                if position not in seen:
                    seen.add(position)
                    targets.append(position)
            edges.append(targets)

        self.levels.append(new_level)
        self.index_of.append(new_index)
        self.successors.append(edges)
        self._check_budget()
        return level + 1

    def _check_budget(self) -> None:
        if self.max_states is not None and self.num_states() > self.max_states:
            raise SpaceBudgetExceeded(
                f"state budget of {self.max_states} states exceeded "
                f"({self.num_states()} states reached)"
            )

    # ------------------------------------------------------------------ access

    def num_states(self) -> int:
        """Total number of stored states across all built levels."""
        return sum(len(level) for level in self.levels)

    def num_points(self) -> int:
        """Synonym for :meth:`num_states`; points are (time, state) pairs."""
        return self.num_states()

    def points(self) -> Iterator[Point]:
        """Iterate over every point of the built space."""
        for time, level in enumerate(self.levels):
            for index in range(len(level)):
                yield (time, index)

    def points_at(self, time: int) -> Iterator[Point]:
        """Iterate over the points at a given time level."""
        for index in range(len(self.levels[time])):
            yield (time, index)

    def state_at(self, point: Point) -> GlobalState:
        """The global state at a point."""
        time, index = point
        return self.levels[time][index]

    def action_at(self, point: Point) -> Optional[JointAction]:
        """The joint action chosen at a point (``None`` if not yet set)."""
        time, index = point
        if time >= len(self.actions):
            return None
        return self.actions[time][index]

    def successors_of(self, point: Point) -> List[Point]:
        """Successor points (empty at the final built level)."""
        time, index = point
        if time >= len(self.successors):
            return []
        return [(time + 1, target) for target in self.successors[time][index]]

    def observation(self, point: Point, agent: int) -> Tuple:
        """The observation of ``agent`` at a point."""
        return self.model.observation(self.state_at(point), agent)

    def eval_atom(self, point: Point, key: Hashable) -> bool:
        """Interpret an atomic proposition at a point."""
        time, _ = point
        return self.model.eval_atom(
            self.state_at(point), time, key, joint_action=self.action_at(point)
        )

    def nonfaulty(self, point: Point, agent: int) -> bool:
        """Whether ``agent`` is nonfaulty at a point."""
        return self.model.nonfaulty(self.state_at(point), agent)

    # ------------------------------------------------------- observation groups

    def _cache(self, name: str) -> Dict:
        cache = getattr(self, name, None)
        if cache is None:
            cache = {}
            object.__setattr__(self, name, cache)
        return cache

    def observation_groups(self, time: int, agent: int) -> Dict[Tuple, List[int]]:
        """Group the states at ``time`` by the observation of ``agent``.

        The groups are the clock-semantics indistinguishability classes for
        the agent at that time.  Results are cached.
        """
        cache = self._cache("_group_cache")
        cache_key = (time, agent)
        if cache_key in cache:
            return cache[cache_key]
        groups: Dict[Tuple, List[int]] = {}
        for index, state in enumerate(self.levels[time]):
            observation = self.model.observation(state, agent)
            groups.setdefault(observation, []).append(index)
        cache[cache_key] = groups
        return groups

    # --------------------------------------------------------- packed bitmasks
    #
    # The fast satisfaction engine (repro.core.checker) represents a subset of
    # the states of a level as a single arbitrary-precision int (bit j <->
    # state j).  The masks below are the per-(level, agent) inputs of the
    # epistemic operators, precomputed once and cached: levels are append-only,
    # so a mask computed for an already-built level never becomes stale.

    def level_mask(self, time: int) -> int:
        """The full bitmask of a level (all states set)."""
        cache = self._cache("_level_mask_cache")
        mask = cache.get(time)
        if mask is None:
            mask = (1 << len(self.levels[time])) - 1
            cache[time] = mask
        return mask

    def observation_masks(self, time: int, agent: int) -> Dict[Tuple, int]:
        """The observation partition of ``agent`` at ``time`` as block bitmasks.

        Maps each reachable observation to the bitmask of the states sharing
        it — the packed form of :meth:`observation_groups`, and the unit over
        which ``Knows`` quantifies.  The lowest set bit of a block is the
        group's representative state (``members[0]`` of the list form).
        """
        cache = self._cache("_obs_mask_cache")
        cache_key = (time, agent)
        masks = cache.get(cache_key)
        if masks is None:
            masks = {
                observation: _pack(members)
                for observation, members in self.observation_groups(time, agent).items()
            }
            cache[cache_key] = masks
        return masks

    def nonfaulty_mask(self, time: int, agent: int) -> int:
        """Bitmask of the states at ``time`` where ``agent`` is nonfaulty."""
        cache = self._cache("_nonfaulty_mask_cache")
        cache_key = (time, agent)
        mask = cache.get(cache_key)
        if mask is None:
            mask = _pack(
                index
                for index, state in enumerate(self.levels[time])
                if self.model.nonfaulty(state, agent)
            )
            cache[cache_key] = mask
        return mask

    def predecessor_masks(self, time: int) -> List[int]:
        """Per state of ``time+1``, the bitmask of its predecessors at ``time``.

        The transposed form of the successor relation: entry ``j`` is the
        mask of states at ``time`` with state ``j`` of ``time+1`` among their
        successors.  Only valid for levels whose successor edges have been
        built (``time < len(self.successors)``).  The checker's temporal
        steps iterate over the set bits of a target set and union these
        masks, which beats a per-state scan whenever the target (or its
        complement) is sparse.
        """
        cache = self._cache("_pred_mask_cache")
        masks = cache.get(time)
        if masks is None:
            masks = [0] * len(self.levels[time + 1])
            for index, targets in enumerate(self.successors[time]):
                bit = 1 << index
                for target in targets:
                    masks[target] |= bit
            cache[time] = masks
        return masks

    def atom_mask(self, time: int, key: Hashable) -> int:
        """One level's interpretation of an atomic proposition, packed.

        The packed, cached sibling of :meth:`eval_atom`: bit ``j`` is set iff
        the atom holds at point ``(time, j)``.  The structured keys of
        :mod:`repro.logic.atoms` are dispatched once per level rather than
        once per state (the generic :meth:`BAModel.eval_atom` re-inspects the
        key at every point, which dominates checking time on large levels);
        observation-feature atoms are evaluated once per observation block,
        since all states of a block share the observation and hence the
        features.  Unknown keys fall back to the model's general interpreter.

        Results are cached per (time, key): levels and their recorded actions
        are append-only, so a computed mask never goes stale.
        """
        cache = self._cache("_atom_mask_cache")
        cache_key = (time, key)
        bits = cache.get(cache_key)
        if bits is None:
            bits = self._compute_atom_mask(time, key)
            cache[cache_key] = bits
        return bits

    def _compute_atom_mask(self, time: int, key: Hashable) -> int:
        states = self.levels[time]
        kind = key[0] if isinstance(key, tuple) and key else key
        bits = 0
        if kind == "init":
            _, agent, value = key
            for index, state in enumerate(states):
                if state.locals[agent].init == value:
                    bits |= 1 << index
        elif kind == "exists":
            _, value = key
            for index, state in enumerate(states):
                for local in state.locals:
                    if local.init == value:
                        bits |= 1 << index
                        break
        elif kind == "decided":
            _, agent = key
            for index, state in enumerate(states):
                if state.locals[agent].decided:
                    bits |= 1 << index
        elif kind == "decision":
            _, agent, value = key
            for index, state in enumerate(states):
                local = state.locals[agent]
                if local.decided and local.decision == value:
                    bits |= 1 << index
        elif kind == "some_decided":
            _, value = key
            for index, state in enumerate(states):
                for local in state.locals:
                    if local.decided and local.decision == value:
                        bits |= 1 << index
                        break
        elif kind == "decides_now":
            _, agent, value = key
            if time >= len(self.actions):
                # No actions recorded for this level: delegate so the error
                # reporting matches the general interpreter.
                return self._atom_mask_fallback(time, key)
            actions = self.actions[time]
            for index in range(len(states)):
                if actions[index][agent] == value:
                    bits |= 1 << index
        elif kind == "nonfaulty":
            _, agent = key
            bits = self.nonfaulty_mask(time, agent)
        elif kind == "time":
            _, when = key
            bits = self.level_mask(time) if time == when else 0
        elif kind == "obs":
            # Evaluated once per observation block: states sharing an
            # observation share its features.  This is the invariant the
            # whole predicates layer rests on (ObservationPredicate keys
            # features by observation); an exchange whose features are not a
            # function of the observation would break both.
            _, agent, feature, value = key
            groups = self.observation_groups(time, agent)
            masks = self.observation_masks(time, agent)
            for observation, members in groups.items():
                features = self.model.observation_features(states[members[0]], agent)
                if feature not in features:
                    raise KeyError(
                        f"unknown observable feature {feature!r} for exchange "
                        f"{self.model.exchange.name!r}"
                    )
                if features[feature] == value:
                    bits |= masks[observation]
        else:
            return self._atom_mask_fallback(time, key)
        return bits

    def _atom_mask_fallback(self, time: int, key: Hashable) -> int:
        bits = 0
        for index in range(len(self.levels[time])):
            if self.eval_atom((time, index), key):
                bits |= 1 << index
        return bits

    def invalidate_caches(self) -> None:
        """Drop cached observation groups and bitmasks (after mutating states)."""
        for name in (
            "_group_cache",
            "_level_mask_cache",
            "_obs_mask_cache",
            "_nonfaulty_mask_cache",
            "_pred_mask_cache",
            "_atom_mask_cache",
        ):
            if hasattr(self, name):
                object.__setattr__(self, name, {})


# ---------------------------------------------------------------------------
# Building a space from a decision protocol
# ---------------------------------------------------------------------------

#: A decision rule: (agent, local state, time) -> action.  The rule is only
#: consulted for agents that have not decided and can still act.
DecisionRule = Callable[[int, Tuple, int], Action]


def noop_rule(agent: int, local: Tuple, time: int) -> Action:
    """The decision rule that never decides (pure information exchange)."""
    return NOOP


def joint_actions_for_level(
    space: LevelledSpace, level: int, rule: DecisionRule
) -> List[JointAction]:
    """Compute the joint action at every state of a level under ``rule``."""
    model = space.model
    joint_actions: List[JointAction] = []
    for state in space.levels[level]:
        actions: List[Action] = []
        for agent in model.agents():
            local = state.locals[agent]
            if local.decided or not model.can_act(state, agent):
                actions.append(NOOP)
            else:
                actions.append(rule(agent, local, level))
        joint_actions.append(tuple(actions))
    return joint_actions


def build_space(
    model: BAModel,
    rule: Optional[DecisionRule] = None,
    horizon: Optional[int] = None,
    max_states: Optional[int] = None,
) -> LevelledSpace:
    """Build the complete levelled space of ``I_{E,F,P}`` for a decision rule.

    Parameters
    ----------
    model:
        The Byzantine-Agreement model ``(E, F)``.
    rule:
        The decision protocol ``P`` as a function of the agent's local state
        and the time.  ``None`` means "never decide" and yields the pure
        information-exchange system used for earliest-knowledge analyses.
    horizon:
        Number of rounds to model; defaults to ``t + 2``.
    max_states:
        Optional state budget; exceeding it raises
        :class:`SpaceBudgetExceeded` (reported as "TO" by the harness).
    """
    if rule is None:
        rule = noop_rule
    space = LevelledSpace.initial(model, horizon=horizon, max_states=max_states)
    for level in range(space.horizon + 1):
        space.set_actions(level, joint_actions_for_level(space, level, rule))
        if level < space.horizon:
            space.extend()
    return space
