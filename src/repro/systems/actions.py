"""Decision actions.

Following Section 3 of the paper, the decision layer of a protocol performs
one of two kinds of actions in each round:

* ``noop`` — represented by :data:`NOOP` (``None``), and
* ``decide_i(v)`` — represented by the integer value ``v`` being decided.

Representing a decision by its (non-negative) value keeps joint actions
hashable and cheap; the helpers below make intent explicit at call sites.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: The no-op action: the agent does not decide this round.
NOOP: Optional[int] = None

#: Type alias for a single agent's action.
Action = Optional[int]

#: Type alias for a joint action (one entry per agent, indexed by agent id).
JointAction = Tuple[Optional[int], ...]


def decide(value: int) -> int:
    """Return the action in which the agent decides on ``value``."""
    if value < 0:
        raise ValueError("decision values must be non-negative")
    return value


def is_decide(action: Action) -> bool:
    """True when ``action`` is a decision (as opposed to ``noop``)."""
    return action is not None


def decided_value(action: Action) -> int:
    """Return the value decided by ``action``.

    Raises ``ValueError`` when the action is ``noop``.
    """
    if action is None:
        raise ValueError("noop carries no decision value")
    return action
