"""The information-exchange protocol interface.

An information exchange ``E`` (Section 3 of the paper) defines the agents'
local states, the messages they broadcast each round, and how local states are
updated from the agent's own action and the messages received.  Decision
protocols and knowledge-based programs are layered on top of an exchange.

Conventions used by every exchange in this package:

* Local states are ``typing.NamedTuple`` instances whose first three fields
  are ``init`` (the agent's initial preference), ``decided`` (whether the
  agent has decided) and ``decision`` (the decided value or ``None``).  The
  remaining fields are exchange specific.  Named tuples keep states hashable,
  compact, and cheap to copy with ``_replace``.
* Messages are arbitrary hashable values, broadcast to every agent (all the
  exchanges studied in the paper are broadcast protocols).  ``None`` means
  the agent sends nothing this round.
* The *observation* of an agent is the part of its local state that is
  declared observable for the clock semantics of knowledge, mirroring the
  ``observable`` annotations of the MCK scripts.  The current time is always
  part of the clock-semantics local state and therefore never included in
  the observation tuple itself.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, Mapping, Optional, Tuple

from repro.systems.actions import Action


class InformationExchange(ABC):
    """Abstract base class for information-exchange protocols.

    Parameters
    ----------
    num_agents:
        The number of agents ``n``.
    num_values:
        The number of possible decision values ``|V|``; values are
        ``0 .. num_values - 1``.
    max_faulty:
        The failure bound ``t``.  Exchanges do not usually need it, but some
        concrete decision rules (e.g. "decide at round ``t + 1``") and the
        default horizon do.
    """

    #: Short name used in tables and benchmark output.
    name: str = "exchange"

    def __init__(self, num_agents: int, num_values: int, max_faulty: int) -> None:
        if num_agents < 1:
            raise ValueError("num_agents must be at least 1")
        if num_values < 1:
            raise ValueError("num_values must be at least 1")
        if max_faulty < 0 or max_faulty > num_agents:
            raise ValueError("max_faulty must be between 0 and num_agents")
        self.num_agents = num_agents
        self.num_values = num_values
        self.max_faulty = max_faulty

    # -- local state lifecycle ---------------------------------------------

    @abstractmethod
    def initial_local(self, agent: int, init_value: int) -> Tuple:
        """The initial local state of ``agent`` with preference ``init_value``."""

    @abstractmethod
    def message(self, agent: int, local: Tuple, action: Action, time: int) -> Optional[Hashable]:
        """The message broadcast by ``agent`` in round ``time + 1``.

        ``action`` is the decision action the agent performs at the start of
        the round (``None`` for noop); exchanges such as ``E_min`` broadcast
        the decided value.  Returning ``None`` means no message is sent.
        """

    @abstractmethod
    def update(
        self,
        agent: int,
        local: Tuple,
        action: Action,
        received: Mapping[int, Hashable],
        time: int,
    ) -> Tuple:
        """The new local state after round ``time + 1``.

        ``received`` maps each sender (possibly including ``agent`` itself)
        to the message delivered from that sender this round.  The ``decided``
        and ``decision`` fields are maintained centrally by
        :class:`repro.systems.model.BAModel`; implementations should carry
        them through unchanged.
        """

    # -- observations --------------------------------------------------------

    @abstractmethod
    def observation(self, agent: int, local: Tuple) -> Tuple:
        """The observable part of the local state (excluding the time)."""

    @abstractmethod
    def observation_features(self, agent: int, local: Tuple) -> Dict[str, Hashable]:
        """Named observable features, used to render synthesized predicates.

        The keys are variable names as they would appear in an MCK script
        (for example ``values_received[0]`` or ``count``), and the values are
        the current values of those variables.  Features must determine the
        observation: two local states with equal feature mappings must have
        equal observations.  The converse is required as well — the features
        must be a *function of* the observation, i.e. two local states with
        equal observations must have equal feature mappings — because both
        the predicates layer (:class:`repro.core.predicates.ObservationPredicate`
        keys features by observation) and the checker's ``obs`` atom masks
        (:meth:`repro.systems.space.LevelledSpace.atom_mask`) evaluate
        features once per observation group.
        """

    # -- defaults -------------------------------------------------------------

    def default_horizon(self) -> int:
        """Number of rounds modelled: ``t + 2`` as in the paper's scripts."""
        return self.max_faulty + 2

    def values(self) -> range:
        """The decision value domain ``V``."""
        return range(self.num_values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(n={self.num_agents}, "
            f"t={self.max_faulty}, v={self.num_values})"
        )
