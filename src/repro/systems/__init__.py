"""Interpreted-systems layer.

This subpackage provides the machinery that turns an information-exchange
protocol, a failure model and a decision protocol into the interpreted system
``I_{E,F,P}`` of the paper (Section 3):

* :mod:`repro.systems.exchange` — the information-exchange interface
  (initial local states, messages, state update, observations).
* :mod:`repro.systems.model` — :class:`BAModel`, which combines an exchange
  with a failure model and interprets atomic propositions.
* :mod:`repro.systems.space` — the levelled (per-time) reachable state space
  used by the clock-semantics model checker and synthesizer.
* :mod:`repro.systems.runs` — explicit failure patterns (adversaries) and
  deterministic run generation, used for run-level properties such as the
  optimality order ``P <=_{E,F} P'``.
"""

from repro.systems.actions import NOOP, decide, is_decide
from repro.systems.exchange import InformationExchange
from repro.systems.model import BAModel
from repro.systems.space import LevelledSpace, Point, build_space
from repro.systems.runs import (
    Adversary,
    CrashAdversary,
    OmissionAdversary,
    Run,
    enumerate_crash_adversaries,
    enumerate_omission_adversaries,
    sample_adversary,
    simulate_run,
)

__all__ = [
    "NOOP",
    "decide",
    "is_decide",
    "InformationExchange",
    "BAModel",
    "LevelledSpace",
    "Point",
    "build_space",
    "Adversary",
    "CrashAdversary",
    "OmissionAdversary",
    "Run",
    "enumerate_crash_adversaries",
    "enumerate_omission_adversaries",
    "sample_adversary",
    "simulate_run",
]
