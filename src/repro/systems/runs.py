"""Explicit failure patterns (adversaries) and deterministic runs.

The optimality order of the paper (Section 4) compares *corresponding runs*
of two decision protocols: runs with the same initial global state, i.e. the
same initial preferences and the same failure pattern.  The levelled state
space resolves failures round by round and therefore does not retain whole
failure patterns, so for run-level properties (optimality comparisons,
property-based testing of agreement and validity) this module provides an
explicit adversary representation and a deterministic run generator.

Two adversary families are provided, matching the failure models:

* :class:`CrashAdversary` — per faulty agent, the round in which it crashes
  and the set of recipients that still receive its crash-round message.
* :class:`OmissionAdversary` — the set of faulty agents plus the set of
  (round, sender, recipient) deliveries that are omitted.

Given an adversary, an assignment of initial preferences and a decision rule,
the run of ``I_{E,F,P}`` is uniquely determined (Section 3 of the paper);
:func:`simulate_run` computes it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import combinations, product
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.failures.base import FailureModel
from repro.failures.crash import CrashFailures
from repro.failures.omissions import (
    GeneralOmissions,
    OmissionFailures,
    ReceivingOmissions,
    SendingOmissions,
)
from repro.systems.actions import Action, JointAction, NOOP
from repro.systems.exchange import InformationExchange
from repro.systems.model import BAModel, GlobalState
from repro.systems.space import DecisionRule, noop_rule


class Adversary:
    """Abstract failure pattern: resolves all failure nondeterminism."""

    def is_faulty(self, agent: int) -> bool:
        """Whether ``agent`` is faulty at all in this pattern."""
        raise NotImplementedError

    def correct_agents(self, num_agents: int) -> Tuple[int, ...]:
        """Agents that are not faulty anywhere in the run."""
        return tuple(agent for agent in range(num_agents) if not self.is_faulty(agent))

    def can_act(self, agent: int, time: int) -> bool:
        """Whether ``agent`` still runs its decision protocol at ``time``."""
        raise NotImplementedError

    def can_send(self, agent: int, round_number: int) -> bool:
        """Whether ``agent`` produces messages in round ``round_number``."""
        raise NotImplementedError

    def delivered(self, round_number: int, sender: int, recipient: int) -> bool:
        """Whether the round's message from ``sender`` reaches ``recipient``."""
        raise NotImplementedError

    def nonfaulty_at(self, agent: int, time: int) -> bool:
        """Whether ``agent`` is in the indexical nonfaulty set at ``time``."""
        raise NotImplementedError


@dataclass(frozen=True)
class CrashAdversary(Adversary):
    """A crash failure pattern.

    ``crashes`` maps each faulty agent to ``(crash_round, survivors)``: the
    agent crashes during ``crash_round`` (the round leading from time
    ``crash_round - 1`` to time ``crash_round``), and ``survivors`` is the set
    of recipients that still receive its crash-round message.
    """

    crashes: Mapping[int, Tuple[int, FrozenSet[int]]] = field(default_factory=dict)

    def is_faulty(self, agent: int) -> bool:
        return agent in self.crashes

    def crash_round(self, agent: int) -> Optional[int]:
        """The round in which ``agent`` crashes, or ``None`` if it never does."""
        entry = self.crashes.get(agent)
        return entry[0] if entry is not None else None

    def can_act(self, agent: int, time: int) -> bool:
        crash_round = self.crash_round(agent)
        return crash_round is None or time < crash_round

    def can_send(self, agent: int, round_number: int) -> bool:
        crash_round = self.crash_round(agent)
        return crash_round is None or round_number <= crash_round

    def delivered(self, round_number: int, sender: int, recipient: int) -> bool:
        entry = self.crashes.get(sender)
        if entry is None:
            return True
        crash_round, survivors = entry
        if round_number < crash_round:
            return True
        if round_number > crash_round:
            return False
        return sender == recipient or recipient in survivors

    def nonfaulty_at(self, agent: int, time: int) -> bool:
        crash_round = self.crash_round(agent)
        return crash_round is None or time < crash_round


@dataclass(frozen=True)
class OmissionAdversary(Adversary):
    """An omission failure pattern.

    ``faulty`` is the fixed set of faulty agents; ``omitted`` is the set of
    (round, sender, recipient) deliveries that are lost.  The constructor does
    not check the omissions against a particular omission variant; use
    :func:`enumerate_omission_adversaries` / :func:`sample_adversary` to
    obtain patterns that respect a given failure model.
    """

    faulty: FrozenSet[int] = frozenset()
    omitted: FrozenSet[Tuple[int, int, int]] = frozenset()

    def is_faulty(self, agent: int) -> bool:
        return agent in self.faulty

    def can_act(self, agent: int, time: int) -> bool:
        return True

    def can_send(self, agent: int, round_number: int) -> bool:
        return True

    def delivered(self, round_number: int, sender: int, recipient: int) -> bool:
        if sender == recipient:
            return True
        return (round_number, sender, recipient) not in self.omitted

    def nonfaulty_at(self, agent: int, time: int) -> bool:
        return agent not in self.faulty


# ---------------------------------------------------------------------------
# Deterministic runs
# ---------------------------------------------------------------------------


@dataclass
class Run:
    """A single (deterministic) run of ``I_{E,F,P}``."""

    votes: Tuple[int, ...]
    adversary: Adversary
    states: List[GlobalState]
    actions: List[JointAction]
    decision_times: Dict[int, Tuple[int, int]]

    def decided(self, agent: int) -> bool:
        """Whether ``agent`` decides at some point in the run."""
        return agent in self.decision_times

    def decision_time(self, agent: int) -> Optional[int]:
        """The time at which ``agent`` decides, or ``None``."""
        entry = self.decision_times.get(agent)
        return entry[0] if entry is not None else None

    def decision_value(self, agent: int) -> Optional[int]:
        """The value decided by ``agent``, or ``None``."""
        entry = self.decision_times.get(agent)
        return entry[1] if entry is not None else None


def _crash_env(adversary: Adversary, num_agents: int, time: int) -> Tuple[bool, ...]:
    return tuple(not adversary.nonfaulty_at(agent, time) for agent in range(num_agents))


def _env_for(
    failures: FailureModel, adversary: Adversary, num_agents: int, time: int
):
    """Environment state consistent with the adversary at a given time."""
    if isinstance(failures, CrashFailures):
        return _crash_env(adversary, num_agents, time)
    if isinstance(failures, OmissionFailures):
        return frozenset(
            agent for agent in range(num_agents) if adversary.is_faulty(agent)
        )
    raise TypeError(f"unsupported failure model {type(failures).__name__}")


def simulate_run(
    model: BAModel,
    rule: Optional[DecisionRule],
    votes: Sequence[int],
    adversary: Adversary,
    horizon: Optional[int] = None,
) -> Run:
    """Compute the unique run for given votes, adversary and decision rule."""
    if rule is None:
        rule = noop_rule
    if horizon is None:
        horizon = model.default_horizon()
    if len(votes) != model.num_agents:
        raise ValueError("one initial preference per agent is required")

    exchange: InformationExchange = model.exchange
    locals_ = tuple(
        exchange.initial_local(agent, votes[agent]) for agent in model.agents()
    )
    env = _env_for(model.failures, adversary, model.num_agents, 0)
    states = [GlobalState(env, locals_)]
    actions: List[JointAction] = []
    decision_times: Dict[int, Tuple[int, int]] = {}

    for time in range(horizon + 1):
        state = states[-1]
        joint: List[Action] = []
        for agent in model.agents():
            local = state.locals[agent]
            if local.decided or not adversary.can_act(agent, time):
                joint.append(NOOP)
                continue
            action = rule(agent, local, time)
            joint.append(action)
            if action is not NOOP and agent not in decision_times:
                decision_times[agent] = (time, action)
        joint_action = tuple(joint)
        actions.append(joint_action)

        if time == horizon:
            break

        round_number = time + 1
        messages = []
        for sender in model.agents():
            if not adversary.can_send(sender, round_number):
                messages.append(None)
            else:
                messages.append(
                    exchange.message(
                        sender, state.locals[sender], joint_action[sender], time
                    )
                )
        new_locals = []
        for recipient in model.agents():
            received = {
                sender: messages[sender]
                for sender in model.agents()
                if messages[sender] is not None
                and adversary.delivered(round_number, sender, recipient)
            }
            new_local = exchange.update(
                recipient,
                state.locals[recipient],
                joint_action[recipient],
                received,
                time,
            )
            if joint_action[recipient] is not NOOP and not state.locals[recipient].decided:
                new_local = new_local._replace(
                    decided=True, decision=joint_action[recipient]
                )
            new_locals.append(new_local)
        env = _env_for(model.failures, adversary, model.num_agents, time + 1)
        states.append(GlobalState(env, tuple(new_locals)))

    return Run(
        votes=tuple(votes),
        adversary=adversary,
        states=states,
        actions=actions,
        decision_times=decision_times,
    )


# ---------------------------------------------------------------------------
# Adversary enumeration and sampling
# ---------------------------------------------------------------------------


def enumerate_crash_adversaries(
    num_agents: int,
    max_faulty: int,
    horizon: int,
    limit: Optional[int] = None,
) -> Iterator[CrashAdversary]:
    """Enumerate crash failure patterns (exhaustive for small instances).

    Each faulty agent is assigned a crash round in ``1 .. horizon`` and a set
    of recipients (other than itself) that receive its crash-round message.
    ``limit`` truncates the enumeration (useful in tests).
    """
    produced = 0
    agents = range(num_agents)
    for size in range(0, max_faulty + 1):
        for faulty in combinations(agents, size):
            per_agent_options = []
            for agent in faulty:
                others = [other for other in agents if other != agent]
                options = []
                for crash_round in range(1, horizon + 1):
                    for survivor_count in range(len(others) + 1):
                        for survivors in combinations(others, survivor_count):
                            options.append((crash_round, frozenset(survivors)))
                per_agent_options.append(options)
            for assignment in product(*per_agent_options):
                crashes = dict(zip(faulty, assignment))
                yield CrashAdversary(crashes=crashes)
                produced += 1
                if limit is not None and produced >= limit:
                    return


def enumerate_omission_adversaries(
    failures: OmissionFailures,
    horizon: int,
    limit: Optional[int] = None,
) -> Iterator[OmissionAdversary]:
    """Enumerate omission failure patterns for a given omission variant.

    The enumeration is exponential in ``n * horizon`` and is intended only for
    very small instances; use ``limit`` or :func:`sample_adversary` otherwise.
    """
    produced = 0
    agents = range(failures.num_agents)
    for size in range(0, failures.max_faulty + 1):
        for faulty in combinations(agents, size):
            faulty_set = frozenset(faulty)
            candidate_links = [
                (round_number, sender, recipient)
                for round_number in range(1, horizon + 1)
                for sender in agents
                for recipient in agents
                if sender != recipient
                and _omission_allowed(failures, faulty_set, sender, recipient)
            ]
            for omit_count in range(len(candidate_links) + 1):
                for omitted in combinations(candidate_links, omit_count):
                    yield OmissionAdversary(
                        faulty=faulty_set, omitted=frozenset(omitted)
                    )
                    produced += 1
                    if limit is not None and produced >= limit:
                        return


def _omission_allowed(
    failures: OmissionFailures, faulty: FrozenSet[int], sender: int, recipient: int
) -> bool:
    if isinstance(failures, SendingOmissions):
        return sender in faulty
    if isinstance(failures, ReceivingOmissions):
        return recipient in faulty
    if isinstance(failures, GeneralOmissions):
        return sender in faulty or recipient in faulty
    raise TypeError(f"unsupported omission model {type(failures).__name__}")


def sample_adversary(
    failures: FailureModel,
    horizon: int,
    rng: random.Random,
) -> Adversary:
    """Draw a random failure pattern consistent with the failure model."""
    agents = list(range(failures.num_agents))
    num_faulty = rng.randint(0, failures.max_faulty)
    faulty = rng.sample(agents, num_faulty)

    if isinstance(failures, CrashFailures):
        crashes = {}
        for agent in faulty:
            crash_round = rng.randint(1, horizon)
            others = [other for other in agents if other != agent]
            survivors = frozenset(
                other for other in others if rng.random() < 0.5
            )
            crashes[agent] = (crash_round, survivors)
        return CrashAdversary(crashes=crashes)

    if isinstance(failures, OmissionFailures):
        faulty_set = frozenset(faulty)
        omitted = set()
        for round_number in range(1, horizon + 1):
            for sender in agents:
                for recipient in agents:
                    if sender == recipient:
                        continue
                    if not _omission_allowed(failures, faulty_set, sender, recipient):
                        continue
                    if rng.random() < 0.5:
                        omitted.add((round_number, sender, recipient))
        return OmissionAdversary(faulty=faulty_set, omitted=frozenset(omitted))

    raise TypeError(f"unsupported failure model {type(failures).__name__}")
