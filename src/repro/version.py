"""Package version."""

__version__ = "1.1.0"
